module Json = Ndroid_report.Json
module Verdict = Ndroid_report.Verdict
module Event = Ndroid_obs.Event
module Stream = Ndroid_obs.Stream

type config = {
  s_socket : string;
  s_jobs : int;
  s_cache : Cache.t option;
  s_depth : int;
  s_max_clients : int;
  s_deadline : float option;
  s_engine : Engine.t;
  s_stream_buf : int;
  s_log : (string -> unit) option;
  s_stop : (unit -> bool) option;
}

let config ~socket ?(jobs = 1) ?cache ?(depth = 256) ?(max_clients = 16)
    ?deadline ?(engine = Engine.Fork) ?(stream_buf = 262144) ?log ?stop () =
  if depth < 1 then invalid_arg "Server.config: depth must be >= 1";
  if max_clients < 1 then invalid_arg "Server.config: max_clients must be >= 1";
  if stream_buf < 1 then
    invalid_arg "Server.config: stream_buf must be >= 1";
  (if engine = Engine.Domains && deadline <> None then
     invalid_arg
       "Server.config: a default deadline needs the forked engine (domains \
        cannot be killed at a deadline)");
  { s_socket = socket; s_jobs = max 1 jobs; s_cache = cache; s_depth = depth;
    s_max_clients = max_clients; s_deadline = deadline; s_engine = engine;
    s_stream_buf = stream_buf; s_log = log; s_stop = stop }

type stats = {
  sv_requests : int;
  sv_served : int;
  sv_cache_hits : int;
  sv_coalesced : int;
  sv_analyses : int;
  sv_shed : int;
  sv_crashed : int;
  sv_timeouts : int;
  sv_respawns : int;
  sv_evictions : int;
  sv_clients : int;
  sv_subscribers : int;
  sv_trace_events : int;
  sv_trace_dropped : int;
  sv_trace_lost : int;
}

(* ---- internal state ---- *)

(* One client's claim on a pending analysis.  The client is addressed by
   (slot, generation): slots are reused after a disconnect, and a verdict
   for a departed client must never reach its slot's next tenant.
   [w_trace] marks a Submit that asked for its own event stream: the
   entry's trace frames are delivered to it req-matched, unthrottled. *)
type waiter = { w_slot : int; w_gen : int; w_req : int; w_trace : bool }

(* A connection that sent Subscribe: every analysis fans its surviving
   events here as broadcast Trace frames, filtered and throttled per
   subscriber.  The cumulative counters ride every frame so the client
   can report exact loss without a side channel. *)
type sub = {
  sb_cats : string list;  (* category filter; [] = all *)
  sb_regexp : Str.regexp option;  (* anchored app-name filter *)
  sb_window : int;  (* requested throttle window, seq units *)
  sb_throttle : Stream.throttle;  (* per-subscriber, across all apps *)
  mutable sb_updropped : int;  (* worker-side throttle drops, summed *)
  mutable sb_uplost : int;  (* worker-side wraparound losses, summed *)
  mutable sb_lost : int;  (* events shed here on outbound backpressure *)
}

(* A pending or in-flight analysis.  Single-flight: concurrent Submits
   whose digests collide all attach as waiters to the first entry — the
   analysis runs once, the verdict fans out to every waiter.  Fault-marked
   tasks carry no key and never coalesce (a fault means "really run
   this").  The first waiter's deadline governs the entry. *)
type entry = {
  e_task : Task.t;
  e_key : string option;  (* digest; the single-flight identity *)
  mutable e_waiters : waiter list;  (* newest first *)
  e_deadline : float option;
}

type client = {
  cl_slot : int;
  cl_gen : int;
  cl_fd : Unix.file_descr;
  cl_reader : Wire.reader;
  mutable cl_out : string;  (* encoded frames not yet written *)
  mutable cl_closing : bool;  (* close once cl_out drains *)
  mutable cl_sub : sub option;  (* live trace subscription, if any *)
}

type worker = {
  wk_slot : int;
  mutable wk_pid : int;
  mutable wk_task_w : Unix.file_descr;
  mutable wk_result_r : Unix.file_descr;
  mutable wk_reader : Wire.reader;
  mutable wk_inflight : entry option;
  mutable wk_deadline : float;  (* infinity = none *)
  mutable wk_alive : bool;
}

let now () = Unix.gettimeofday ()

let status_message = function
  | Unix.WEXITED n -> Printf.sprintf "worker exited with status %d" n
  | Unix.WSIGNALED n when n = Sys.sigkill -> "worker killed by SIGKILL"
  | Unix.WSIGNALED n when n = Sys.sigsegv -> "worker killed by SIGSEGV"
  | Unix.WSIGNALED n -> Printf.sprintf "worker killed by signal %d" n
  | Unix.WSTOPPED n -> Printf.sprintf "worker stopped by signal %d" n

let serve cfg =
  let log fmt =
    Printf.ksprintf
      (fun s -> match cfg.s_log with Some f -> f s | None -> ())
      fmt
  in
  (* one engine per daemon: the two cannot share a process (Unix.fork
     refuses once a domain exists), so Auto resolves at startup — fork
     when a default deadline must be enforceable, domains otherwise *)
  let engine =
    Engine.resolve cfg.s_engine ~needs_isolation:(cfg.s_deadline <> None)
  in
  (* the facade owns digesting, the warm layer and the disk cache; created
     before forking so workers inherit the summary persistence hooks *)
  let service = Analysis.service ?cache:cfg.s_cache () in
  let requests = ref 0 and served = ref 0 and cache_hits = ref 0 in
  let coalesced = ref 0 and analyses = ref 0 in
  let shed = ref 0 and crashed = ref 0 and timeouts = ref 0 in
  let respawns = ref 0 and clients_total = ref 0 in
  let subscribers = ref 0 in
  let trace_events = ref 0 and trace_dropped = ref 0 and trace_lost = ref 0 in
  let next_task_id = ref 0 in
  let next_gen = ref 0 in
  let queue : entry Shard_queue.t =
    Shard_queue.create_empty ~shards:cfg.s_max_clients ~capacity:cfg.s_depth ()
  in
  (* digest -> the entry every colliding Submit coalesces onto; an entry
     is removed exactly when its terminal response fans out (or when its
     last waiter disconnects while it is still queued) *)
  let inflight : (string, entry) Hashtbl.t = Hashtbl.create 256 in
  let clients : client option array = Array.make cfg.s_max_clients None in
  let workers : worker option array =
    Array.make (if engine = Engine.Fork then cfg.s_jobs else 0) None
  in
  (* ---- lifecycle ---- *)
  (try Unix.unlink cfg.s_socket with Unix.Unix_error _ -> ());
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX cfg.s_socket);
  Unix.listen listen_fd 64;
  Unix.set_nonblock listen_fd;
  let stop = ref false in
  let stoppable s = Sys.signal s (Sys.Signal_handle (fun _ -> stop := true)) in
  let prev_term = stoppable Sys.sigterm in
  let prev_int = stoppable Sys.sigint in
  let prev_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  let should_stop () =
    !stop || (match cfg.s_stop with Some f -> f () | None -> false)
  in
  (* ---- forked workers ---- *)
  let foreign_fds () =
    let acc = ref [ listen_fd ] in
    Array.iter
      (function
        | Some c -> acc := c.cl_fd :: !acc
        | None -> ())
      clients;
    Array.iter
      (function
        | Some w when w.wk_alive -> acc := w.wk_task_w :: w.wk_result_r :: !acc
        | _ -> ())
      workers;
    !acc
  in
  let spawn slot =
    let task_r, task_w = Unix.pipe () in
    let result_r, result_w = Unix.pipe () in
    let inherited = foreign_fds () in
    match Unix.fork () with
    | 0 ->
      (* a worker must hold no descriptor of the socket, any client, or
         any sibling — or EOFs (client gone, sibling dead) go unseen *)
      List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
        inherited;
      Unix.close task_w;
      Unix.close result_r;
      Worker.loop task_r result_w;
      assert false
    | pid ->
      Unix.close task_r;
      Unix.close result_w;
      { wk_slot = slot; wk_pid = pid; wk_task_w = task_w;
        wk_result_r = result_r; wk_reader = Wire.create_reader ();
        wk_inflight = None; wk_deadline = infinity; wk_alive = true }
  in
  for i = 0 to Array.length workers - 1 do
    workers.(i) <- Some (spawn i)
  done;
  (* ---- domain workers (created after any forking, never before) ---- *)
  let dom_pool =
    if engine = Engine.Domains then
      Some (Domain_pool.create ~domains:cfg.s_jobs ~service ())
    else None
  in
  let dom_slots : entry option array =
    Array.make (if engine = Engine.Domains then cfg.s_jobs else 0) None
  in
  (* ---- client output: buffered, non-blocking ---- *)
  let waiter_live (w : waiter) =
    match clients.(w.w_slot) with
    | Some c -> c.cl_gen = w.w_gen
    | None -> false
  in
  let unlink_entry (e : entry) =
    match e.e_key with
    | Some k -> (
      match Hashtbl.find_opt inflight k with
      | Some e' when e' == e -> Hashtbl.remove inflight k
      | _ -> ())
    | None -> ()
  in
  let rec client_gone (c : client) =
    (match clients.(c.cl_slot) with
     | Some c' when c'.cl_gen = c.cl_gen ->
       clients.(c.cl_slot) <- None;
       (* a disconnected client's not-yet-dispatched requests are dropped
          — unless another client coalesced onto one, in which case the
          entry re-homes to a surviving waiter's shard; its in-flight
          ones finish and per-waiter generation checks sort out delivery *)
       let dropped = Shard_queue.clear_shard queue ~shard:c.cl_slot in
       let rehomed = ref 0 in
       List.iter
         (fun (e : entry) ->
           match List.filter waiter_live e.e_waiters with
           | [] -> unlink_entry e
           | survivors ->
             e.e_waiters <- survivors;
             let home = (List.hd survivors).w_slot in
             if Shard_queue.push queue ~shard:home e then incr rehomed
             else begin
               (* the survivor's shard is full: shed loudly, never drop *)
               unlink_entry e;
               List.iter
                 (fun (w : waiter) ->
                   incr shed;
                   deliver_waiter w
                     (Proto.Shed
                        { sh_req = w.w_req;
                          sh_reason =
                            "queue at capacity while re-homing a coalesced \
                             request" }))
                 (List.rev survivors)
             end)
         dropped;
       if dropped <> [] then
         log "client %d gone, dropped %d queued requests (%d re-homed)"
           c.cl_slot (List.length dropped) !rehomed
     | _ -> ());
    try Unix.close c.cl_fd with Unix.Unix_error _ -> ()
  and flush_client (c : client) =
    if c.cl_out <> "" then begin
      let len = String.length c.cl_out in
      match Unix.write_substring c.cl_fd c.cl_out 0 len with
      | n -> c.cl_out <- String.sub c.cl_out n (len - n)
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        ()
      | exception Unix.Unix_error _ -> client_gone c
    end;
    if c.cl_out = "" && c.cl_closing then client_gone c
  and queue_out (c : client) msg =
    if not c.cl_closing then begin
      c.cl_out <- c.cl_out ^ Bytes.to_string (Proto.to_frame msg);
      flush_client c
    end
  and deliver_waiter (w : waiter) msg =
    match clients.(w.w_slot) with
    | Some c when c.cl_gen = w.w_gen -> queue_out c msg
    | _ -> ()
  in
  (* terminal fan-out: one response per waiter, oldest submit first *)
  let resolve_entry (e : entry) msg_of_waiter =
    unlink_entry e;
    List.iter
      (fun (w : waiter) ->
        incr served;
        deliver_waiter w (msg_of_waiter w))
      (List.rev e.e_waiters)
  in
  (* ---- trace fan-out: shed, never stall ---- *)
  (* A trace frame is queued only if the client's outbound buffer stays
     under the stream bound; otherwise the whole frame is shed and its
     events counted lost.  Verdicts never go through this gate — only
     trace frames are expendable. *)
  let queue_trace (c : client) msg =
    if c.cl_closing then false
    else begin
      let frame = Bytes.unsafe_to_string (Proto.to_frame msg) in
      if String.length c.cl_out + String.length frame > cfg.s_stream_buf then
        false
      else begin
        c.cl_out <- c.cl_out ^ frame;
        flush_client c;
        true
      end
    end
  in
  let sub_wants_app (s : sub) app =
    match s.sb_regexp with
    | None -> true
    | Some re -> Str.string_match re app 0
  in
  let sub_wants_cat (s : sub) (ev : Stream.event) =
    s.sb_cats = [] || List.mem (Event.category ev.Stream.ev_kind) s.sb_cats
  in
  let deliver_sub (c : client) (s : sub) ~app ~events ~dropped ~lost =
    if sub_wants_app s app then begin
      s.sb_updropped <- s.sb_updropped + dropped;
      s.sb_uplost <- s.sb_uplost + lost;
      let d0 = Stream.dropped s.sb_throttle in
      let kept =
        List.filter
          (fun ev -> sub_wants_cat s ev && Stream.admit s.sb_throttle ev)
          events
      in
      trace_dropped := !trace_dropped + (Stream.dropped s.sb_throttle - d0);
      if kept <> [] || dropped > 0 || lost > 0 then begin
        let msg =
          Proto.Trace
            { tc_req = -1; tc_app = app; tc_events = kept;
              tc_dropped = s.sb_updropped + Stream.dropped s.sb_throttle;
              tc_lost = s.sb_uplost + s.sb_lost }
        in
        if not (queue_trace c msg) then begin
          let n = List.length kept in
          s.sb_lost <- s.sb_lost + n;
          trace_lost := !trace_lost + n
        end
      end
    end
  in
  let deliver_trace_waiters (e : entry) ~app ~events ~dropped ~lost =
    List.iter
      (fun (w : waiter) ->
        if w.w_trace then
          match clients.(w.w_slot) with
          | Some c when c.cl_gen = w.w_gen ->
            let msg =
              Proto.Trace
                { tc_req = w.w_req; tc_app = app; tc_events = events;
                  tc_dropped = dropped; tc_lost = lost }
            in
            if not (queue_trace c msg) then
              trace_lost := !trace_lost + List.length events
          | _ -> ())
      (List.rev e.e_waiters)
  in
  let fanout_trace ?entry ~app ~events ~dropped ~lost () =
    trace_events := !trace_events + List.length events;
    trace_dropped := !trace_dropped + dropped;
    trace_lost := !trace_lost + lost;
    (match entry with
     | Some e -> deliver_trace_waiters e ~app ~events ~dropped ~lost
     | None -> ());
    Array.iter
      (function
        | Some c -> (
          match c.cl_sub with
          | Some s -> deliver_sub c s ~app ~events ~dropped ~lost
          | None -> ())
        | None -> ())
      clients
  in
  (* The window the worker-side tap should run with: 0 (unthrottled) if a
     waiter asked for its own stream, else the tightest-passing (minimum)
     subscriber window; [None] when nobody is listening — the worker then
     skips the tap entirely, which is what keeps an unsubscribed sweep at
     its usual speed.  Per-subscriber windows still apply on fan-out. *)
  let worker_window (e : entry) =
    let best = ref None in
    let demand w =
      best := Some (match !best with None -> w | Some b -> min b w)
    in
    if List.exists (fun (w : waiter) -> w.w_trace) e.e_waiters then demand 0;
    Array.iter
      (function
        | Some c -> (
          match c.cl_sub with Some s -> demand s.sb_window | None -> ())
        | None -> ())
      clients;
    !best
  in
  (* ---- admission ---- *)
  let admit (c : client) (s : Proto.submit) =
    incr requests;
    let task =
      { Task.t_id = !next_task_id; t_subject = s.Proto.sb_subject;
        t_mode = s.Proto.sb_mode; t_fault = s.Proto.sb_fault }
    in
    incr next_task_id;
    match Analysis.service_find service task with
    | Some (report, _) ->
      (* the daemon's reason to exist: the warm path never queues, never
         forks, never re-links — one probe, one frame back *)
      incr cache_hits;
      incr served;
      queue_out c
        (Proto.Verdict
           { vd_req = s.Proto.sb_req; vd_cached = true; vd_seconds = 0.0;
             vd_report = report })
    | None ->
      if
        engine = Engine.Domains
        && (task.Task.t_fault <> None || s.Proto.sb_deadline <> None)
      then begin
        (* domains cannot act a fault or be killed at a deadline; refusing
           is honest — silently ignoring the marker would not be *)
        incr shed;
        queue_out c
          (Proto.Shed
             { sh_req = s.Proto.sb_req;
               sh_reason =
                 "request needs process isolation (fault or deadline); \
                  this daemon runs the domain engine" })
      end
      else begin
        let key =
          if task.Task.t_fault = None then
            Some (Analysis.service_digest service task)
          else None
        in
        match Option.bind key (Hashtbl.find_opt inflight) with
        | Some entry ->
          (* single-flight: same digest already queued or running — attach
             and wait for the shared verdict *)
          entry.e_waiters <-
            { w_slot = c.cl_slot; w_gen = c.cl_gen; w_req = s.Proto.sb_req;
              w_trace = s.Proto.sb_trace }
            :: entry.e_waiters;
          incr coalesced;
          queue_out c
            (Proto.Progress
               { pg_req = s.Proto.sb_req; pg_state = "coalesced";
                 pg_depth = Shard_queue.shard_depth queue ~shard:c.cl_slot })
        | None ->
          let entry =
            { e_task = task; e_key = key;
              e_waiters =
                [ { w_slot = c.cl_slot; w_gen = c.cl_gen;
                    w_req = s.Proto.sb_req; w_trace = s.Proto.sb_trace } ];
              e_deadline = s.Proto.sb_deadline }
          in
          if Shard_queue.push queue ~shard:c.cl_slot entry then begin
            (match key with
             | Some k -> Hashtbl.replace inflight k entry
             | None -> ());
            queue_out c
              (Proto.Progress
                 { pg_req = s.Proto.sb_req; pg_state = "queued";
                   pg_depth = Shard_queue.shard_depth queue ~shard:c.cl_slot })
          end
          else begin
            (* shed, don't stall: the bound is the whole backpressure story *)
            incr shed;
            queue_out c
              (Proto.Shed
                 { sh_req = s.Proto.sb_req;
                   sh_reason =
                     Printf.sprintf
                       "queue at capacity (%d requests in flight)"
                       (Shard_queue.remaining queue) })
          end
      end
  in
  let handle_client_frame (c : client) frame =
    match Proto.of_frame frame with
    | Ok (Proto.Submit s) -> admit c s
    | Ok (Proto.Subscribe s) -> (
      match
        match s.Proto.su_app with
        | None -> Ok None
        | Some re -> (
          try Ok (Some (Str.regexp re))
          with Failure e | Invalid_argument e ->
            Error (Printf.sprintf "bad app regex %S: %s" re e))
      with
      | Error e ->
        queue_out c (Proto.Error e);
        c.cl_closing <- true
      | Ok regexp ->
        incr subscribers;
        c.cl_sub <-
          Some
            { sb_cats = s.Proto.su_cats; sb_regexp = regexp;
              sb_window = max 0 s.Proto.su_window;
              sb_throttle = Stream.throttle ~window:(max 0 s.Proto.su_window);
              sb_updropped = 0; sb_uplost = 0; sb_lost = 0 };
        log "client %d subscribed to traces (window %d)" c.cl_slot
          s.Proto.su_window)
    | Ok _ ->
      queue_out c
        (Proto.Error "clients may only send Submit or Subscribe messages");
      c.cl_closing <- true
    | Error e ->
      (* decisive: version mismatches and garbage close the connection *)
      queue_out c (Proto.Error e);
      c.cl_closing <- true
  in
  (* ---- forked workers: dispatch, results, death, deadlines ---- *)
  let dispatch (w : worker) =
    match Shard_queue.pop_rr queue with
    | None -> ()
    | Some entry -> (
      w.wk_inflight <- Some entry;
      w.wk_deadline <-
        (match (entry.e_deadline, cfg.s_deadline) with
         | Some d, _ | None, Some d -> now () +. d
         | None, None -> infinity);
      (* the streaming request rides the task frame as an extra member the
         worker understands and {!Task.of_json} ignores *)
      let payload =
        match (worker_window entry, Task.to_json entry.e_task) with
        | Some win, Json.Obj fields ->
          Json.Obj (fields @ [ ("trace", Json.Int win) ])
        | _, j -> j
      in
      match Wire.write_frame w.wk_task_w (Json.to_string payload) with
      | () -> ()
      | exception Unix.Unix_error _ ->
        (* already dead; the EOF handler resolves the entry *)
        ())
  in
  let reap_status (w : worker) =
    w.wk_alive <- false;
    (try Unix.close w.wk_task_w with Unix.Unix_error _ -> ());
    (try Unix.close w.wk_result_r with Unix.Unix_error _ -> ());
    match Unix.waitpid [] w.wk_pid with
    | _, status -> status_message status
    | exception Unix.Unix_error _ -> "worker vanished"
  in
  let respawn (w : worker) =
    (* the daemon is long-lived: a dead worker is always replaced *)
    workers.(w.wk_slot) <- Some (spawn w.wk_slot);
    incr respawns
  in
  let resolve_inflight (w : worker) verdict =
    match w.wk_inflight with
    | None -> ()
    | Some e ->
      incr analyses;
      resolve_entry e (fun wtr ->
          Proto.Verdict
            { vd_req = wtr.w_req; vd_cached = false; vd_seconds = 0.0;
              vd_report =
                { Verdict.r_app = Task.subject_name e.e_task.Task.t_subject;
                  r_analysis = Task.mode_name e.e_task.Task.t_mode;
                  r_verdict = verdict;
                  r_meta = [] } });
      w.wk_inflight <- None
  in
  let handle_worker_death (w : worker) =
    let why = reap_status w in
    (match w.wk_inflight with
     | Some _ ->
       incr crashed;
       log "worker %d died (%s) mid-request" w.wk_slot why
     | None -> ());
    resolve_inflight w (Verdict.Crashed why);
    respawn w
  in
  let handle_worker_timeout (w : worker) =
    (try Unix.kill w.wk_pid Sys.sigkill with Unix.Unix_error _ -> ());
    ignore (reap_status w);
    incr timeouts;
    resolve_inflight w Verdict.Timeout;
    respawn w
  in
  (* a worker's trace frame: decode once, deliver req-matched to the
     entry's trace waiters and filtered/throttled to every subscriber.
     Trace frames precede the result frame on the pipe, so events always
     reach a tracing client before its verdict. *)
  let handle_trace_payload (w : worker) tj =
    let id =
      Option.value ~default:(-1) (Option.bind (Json.member "id" tj) Json.int)
    in
    let app =
      Option.value ~default:"?" (Option.bind (Json.member "app" tj) Json.str)
    in
    let events =
      match Option.bind (Json.member "events" tj) Json.list with
      | None -> []
      | Some l ->
        List.filter_map
          (fun ej -> Result.to_option (Stream.event_of_json ej))
          l
    in
    let dropped =
      Option.value ~default:0 (Option.bind (Json.member "dropped" tj) Json.int)
    in
    let lost =
      Option.value ~default:0 (Option.bind (Json.member "lost" tj) Json.int)
    in
    let entry =
      match w.wk_inflight with
      | Some e when e.e_task.Task.t_id = id -> Some e
      | _ -> None
    in
    fanout_trace ?entry ~app ~events ~dropped ~lost ()
  in
  let handle_result_frame (w : worker) payload =
    match Json.of_string payload with
    | Error _ -> ()
    | Ok j when Json.member "trace" j <> None -> (
      match Json.member "trace" j with
      | Some tj -> handle_trace_payload w tj
      | None -> ())
    | Ok j ->
      let id = Option.bind (Json.member "id" j) Json.int in
      let seconds =
        match Json.member "seconds" j with
        | Some (Json.Float f) -> f
        | Some (Json.Int i) -> float_of_int i
        | _ -> 0.0
      in
      let report =
        Option.map Verdict.report_of_json (Json.member "report" j)
      in
      (match (id, report, w.wk_inflight) with
       | Some id, Some (Ok report), Some e when e.e_task.Task.t_id = id ->
         w.wk_inflight <- None;
         w.wk_deadline <- infinity;
         incr analyses;
         if e.e_task.Task.t_fault = None then
           Analysis.service_store service
             ~digest:(Analysis.service_digest service e.e_task)
             report;
         resolve_entry e (fun wtr ->
             Proto.Verdict
               { vd_req = wtr.w_req; vd_cached = false; vd_seconds = seconds;
                 vd_report = report })
       | _ -> ())
  in
  (* ---- domain workers: dispatch and completions ---- *)
  let free_dom_slot () =
    let found = ref None in
    Array.iteri
      (fun i e -> if !found = None && e = None then found := Some i)
      dom_slots;
    !found
  in
  let dispatch_domains pool =
    let rec go () =
      match free_dom_slot () with
      | None -> ()
      | Some ticket -> (
        match Shard_queue.pop_rr queue with
        | None -> ()
        | Some entry ->
          (* arm (or disarm) the pool's tap before the task can be
             claimed; the window travels with the claim *)
          Domain_pool.set_trace pool (worker_window entry);
          dom_slots.(ticket) <- Some entry;
          Domain_pool.submit pool ~ticket entry.e_task;
          go ())
    in
    go ()
  in
  let handle_dom_completions pool =
    List.iter
      (fun (c : Domain_pool.completion) ->
        match dom_slots.(c.Domain_pool.dc_ticket) with
        | None -> ()
        | Some entry ->
          dom_slots.(c.Domain_pool.dc_ticket) <- None;
          incr analyses;
          (* events first, verdict second: same ordering contract as the
             forked worker's pipe *)
          if
            c.Domain_pool.dc_events <> []
            || c.Domain_pool.dc_dropped > 0
            || c.Domain_pool.dc_lost > 0
          then
            fanout_trace ~entry
              ~app:c.Domain_pool.dc_report.Verdict.r_app
              ~events:c.Domain_pool.dc_events
              ~dropped:c.Domain_pool.dc_dropped ~lost:c.Domain_pool.dc_lost
              ();
          (* [Analysis.service_run] already stored a cacheable report *)
          resolve_entry entry (fun wtr ->
              Proto.Verdict
                { vd_req = wtr.w_req; vd_cached = false;
                  vd_seconds = c.Domain_pool.dc_seconds;
                  vd_report = c.Domain_pool.dc_report }))
      (Domain_pool.drain pool)
  in
  (* ---- accept ---- *)
  let free_slot () =
    let found = ref None in
    Array.iteri
      (fun i c -> if !found = None && c = None then found := Some i)
      clients;
    !found
  in
  let accept_clients () =
    let rec loop () =
      match Unix.accept listen_fd with
      | fd, _ -> (
        match free_slot () with
        | None ->
          (* refuse loudly rather than queueing an invisible client *)
          (try Proto.write fd (Proto.Error "server full (client slots)")
           with Unix.Unix_error _ -> ());
          (try Unix.close fd with Unix.Unix_error _ -> ())
        | Some slot ->
          Unix.set_nonblock fd;
          incr clients_total;
          incr next_gen;
          clients.(slot) <-
            Some
              { cl_slot = slot; cl_gen = !next_gen; cl_fd = fd;
                cl_reader = Wire.create_reader (); cl_out = "";
                cl_closing = false; cl_sub = None };
          log "client %d connected" slot;
          loop ())
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    in
    loop ()
  in
  (* ---- the loop ---- *)
  log "listening on %s (%s engine, %d workers, depth %d)" cfg.s_socket
    (Engine.name engine) cfg.s_jobs cfg.s_depth;
  while not (should_stop ()) do
    (* keep every worker busy before sleeping *)
    Array.iter
      (function
        | Some w when w.wk_alive && w.wk_inflight = None -> dispatch w
        | _ -> ())
      workers;
    (match dom_pool with Some p -> dispatch_domains p | None -> ());
    let rfds = ref [ listen_fd ] in
    let wfds = ref [] in
    Array.iter
      (function
        | Some w when w.wk_alive -> rfds := w.wk_result_r :: !rfds
        | _ -> ())
      workers;
    (match dom_pool with
     | Some p -> rfds := Domain_pool.notify_fd p :: !rfds
     | None -> ());
    Array.iter
      (function
        | Some c ->
          rfds := c.cl_fd :: !rfds;
          if c.cl_out <> "" then wfds := c.cl_fd :: !wfds
        | None -> ())
      clients;
    let next_deadline =
      Array.fold_left
        (fun acc w ->
          match w with
          | Some w when w.wk_alive -> Float.min acc w.wk_deadline
          | _ -> acc)
        infinity workers
    in
    let dt =
      if next_deadline = infinity then 0.5
      else Float.max 0.0 (Float.min 0.5 (next_deadline -. now ()))
    in
    let readable, writable, _ =
      try Unix.select !rfds !wfds [] dt
      with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
    in
    if List.mem listen_fd readable then accept_clients ();
    (* worker results *)
    Array.iter
      (function
        | Some w when w.wk_alive && List.mem w.wk_result_r readable -> (
          match Wire.drain w.wk_reader w.wk_result_r with
          | `Frames frames -> List.iter (handle_result_frame w) frames
          | `Eof frames ->
            List.iter (handle_result_frame w) frames;
            handle_worker_death w)
        | _ -> ())
      workers;
    (* domain completions (the notify fd is edge enough: drain always) *)
    (match dom_pool with Some p -> handle_dom_completions p | None -> ());
    (* client traffic *)
    Array.iter
      (function
        | Some c when List.mem c.cl_fd readable -> (
          match Wire.drain c.cl_reader c.cl_fd with
          | `Frames frames -> List.iter (handle_client_frame c) frames
          | `Eof frames ->
            List.iter (handle_client_frame c) frames;
            client_gone c
          | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
            ->
            ())
        | _ -> ())
      clients;
    Array.iter
      (function
        | Some c when List.mem c.cl_fd writable -> flush_client c
        | _ -> ())
      clients;
    (* per-request budgets *)
    let t = now () in
    Array.iter
      (function
        | Some w when w.wk_alive && w.wk_deadline <= t ->
          handle_worker_timeout w
        | _ -> ())
      workers
  done;
  (* ---- orderly shutdown ---- *)
  log "shutting down";
  Array.iter
    (function
      | Some c -> flush_client c
      | None -> ())
    clients;
  Array.iter
    (function
      | Some w when w.wk_alive ->
        (try Unix.close w.wk_task_w with Unix.Unix_error _ -> ());
        (try Unix.close w.wk_result_r with Unix.Unix_error _ -> ());
        (try Unix.kill w.wk_pid Sys.sigkill with Unix.Unix_error _ -> ());
        (try ignore (Unix.waitpid [] w.wk_pid) with Unix.Unix_error _ -> ())
      | _ -> ())
    workers;
  (* a domain mid-analysis finishes first (it cannot be killed); its
     verdict is discarded with the pool *)
  (match dom_pool with Some p -> Domain_pool.shutdown p | None -> ());
  Array.iter
    (function
      | Some c -> ( try Unix.close c.cl_fd with Unix.Unix_error _ -> ())
      | None -> ())
    clients;
  (try Unix.close listen_fd with Unix.Unix_error _ -> ());
  (try Unix.unlink cfg.s_socket with Unix.Unix_error _ -> ());
  ignore (Sys.signal Sys.sigterm prev_term);
  ignore (Sys.signal Sys.sigint prev_int);
  ignore (Sys.signal Sys.sigpipe prev_pipe);
  { sv_requests = !requests; sv_served = !served;
    sv_cache_hits = !cache_hits; sv_coalesced = !coalesced;
    sv_analyses = !analyses; sv_shed = !shed; sv_crashed = !crashed;
    sv_timeouts = !timeouts; sv_respawns = !respawns;
    sv_evictions = Analysis.service_evictions service;
    sv_clients = !clients_total;
    sv_subscribers = !subscribers;
    sv_trace_events = !trace_events;
    sv_trace_dropped = !trace_dropped;
    sv_trace_lost = !trace_lost }
