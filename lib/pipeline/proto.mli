(** The service protocol: typed request/response messages over {!Wire}'s
    tagged frames (currently v2).

    A client submits analysis requests ([Submit]) on the daemon's Unix
    socket and reads a stream of responses: at most one terminal
    [Verdict] or [Shed] per request (matched by the client-chosen [req]
    id, echoed back), with non-terminal [Progress] — and, for tracing
    clients, [Trace] — notes in between.  Payloads are canonical JSON
    reusing the {!Ndroid_report} codecs — the [report] member of a
    [Verdict] is byte-identical to the corresponding element of
    `ndroid analyze --json` output, and [Trace] events ride the
    {!Ndroid_obs.Stream.event_json} codec shared with the `--trace`
    JSONL exporter.

    The version byte under every message (see {!Wire.parse_tagged})
    makes a stale client a decisive error, never a silent misparse. *)

type submit = {
  sb_req : int;  (** client-chosen id, echoed on every response *)
  sb_subject : Task.subject;
  sb_mode : Task.mode;
  sb_deadline : float option;
      (** per-request wall-clock budget, seconds; the server's default
          applies when absent *)
  sb_fault : Task.fault option;
      (** injected worker misbehaviour — service-layer tests and bench
          only.  Fault-marked requests are never answered from (or
          stored into) the cache. *)
  sb_trace : bool;
      (** stream this request's own events back as [Trace] frames
          (req-matched) before the terminal response *)
}

type subscribe = {
  su_cats : string list;  (** {!Ndroid_obs.Event.category} names; [[]] = all *)
  su_app : string option;  (** anchored regex over app names, [None] = all *)
  su_window : int;  (** per-(method, kind) throttle window, seq units *)
}

type trace = {
  tc_req : int;  (** the requesting client's id, or [-1] on broadcast *)
  tc_app : string;
  tc_events : Ndroid_obs.Stream.event list;
  tc_dropped : int;  (** cumulative throttle-suppressed, this stream *)
  tc_lost : int;  (** cumulative shed to wraparound/backpressure *)
}

type message =
  | Submit of submit  (** client → server *)
  | Subscribe of subscribe
      (** client → server: turn this connection into a live trace
          subscriber; every analysis the daemon runs fans matching
          events back as broadcast [Trace] frames *)
  | Verdict of { vd_req : int;
                 vd_cached : bool;  (** answered from the warm cache *)
                 vd_seconds : float;  (** analysis seconds (0 if cached) *)
                 vd_report : Ndroid_report.Verdict.report }
      (** terminal response: the analysis result *)
  | Progress of { pg_req : int; pg_state : string; pg_depth : int }
      (** non-terminal note, e.g. ["queued"] with the client's queue
          depth at admission *)
  | Trace of trace
      (** non-terminal: a bounded batch of events from a running (or
          just-finished) analysis.  Never blocks analysis: a slow
          subscriber sheds frames, counted in [tc_lost]. *)
  | Shed of { sh_req : int; sh_reason : string }
      (** terminal response: admission refused the request (queue at
          capacity).  Resubmit later — shedding is the overload contract,
          the daemon never stalls or silently drops. *)
  | Error of string  (** protocol-level failure; the connection closes *)

val to_frame : message -> bytes
(** Complete wire bytes (length header + version + tag + payload) — for
    the server's buffered per-client writes. *)

val write : Unix.file_descr -> message -> unit
(** Encode and write, blocking, retrying short writes. *)

val of_frame : string -> (message, string) result
(** Decode a frame payload as returned by {!Wire.read_frame} /
    {!Wire.drain}.  Protocol-version mismatches surface here. *)

(** Blocking client used by `ndroid submit`, the tests and the bench.
    One connection, synchronous sends, blocking receives; pipelining is
    the caller's choice (send many submits, then collect). *)
module Client : sig
  type t

  val connect : ?retry_for:float -> string -> (t, string) result
  (** Connect to the daemon's socket at that path.  [retry_for] keeps
      retrying for up to that many seconds while the socket does not
      exist or refuses — for racing a daemon that is still starting. *)

  val fd : t -> Unix.file_descr
  val send : t -> message -> unit
  val recv : t -> (message, string) result
  (** Next message, blocking.  [Error] on EOF or a malformed frame. *)

  val close : t -> unit
end
