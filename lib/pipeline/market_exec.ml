(* Dynamic execution of synthetic market apps.

   A market subject is a generator model, but {!Ndroid_corpus.Apk}
   materializes a real Main class whose [onCreate] performs every method
   reference with a genuine def-use chain from source results to sink
   arguments — so the app can be *run*, not just scanned.  This module
   boots a device, grafts intrinsic stubs for the framework traffic the
   generator emits, provides the app's native library, and drives
   [onCreate] under full NDroid (optionally gated to a static focus
   set — the hybrid pipeline's focused dynamic pass). *)

module Device = Ndroid_runtime.Device
module Vm = Ndroid_dalvik.Vm
module Classes = Ndroid_dalvik.Classes
module Jbuilder = Ndroid_dalvik.Jbuilder
module Dvalue = Ndroid_dalvik.Dvalue
module Taint = Ndroid_taint.Taint
module Asm = Ndroid_arm.Asm
module Insn = Ndroid_arm.Insn
module App_model = Ndroid_corpus.App_model
module Apk = Ndroid_corpus.Apk
module Ndroid = Ndroid_core.Ndroid
module Verdict = Ndroid_report.Verdict
module Json = Ndroid_report.Json

(* Framework methods the market generator references that the device's
   simulated framework does not already provide.  Stubs are merged with
   {!Vm.define_method}, so anything the framework *does* define wins. *)
let install_stubs device =
  let vm = Device.vm device in
  let intr = Vm.register_intrinsic vm in
  intr "Market.nop" (fun _ _ -> (Dvalue.zero, Taint.clear));
  (* value-returning stubs hand back their first argument with its taint,
     so they never cut a def-use chain the dex carries through them *)
  intr "Market.pass" (fun _ args ->
      if Array.length args > 0 then args.(0) else (Dvalue.zero, Taint.clear));
  let stub ~cls ~name ~shorty key =
    Vm.define_method vm ~cls
      (Jbuilder.intrinsic_method ~cls ~name ~shorty key)
  in
  stub ~cls:"Landroid/app/Activity;" ~name:"onCreate" ~shorty:"VL" "Market.nop";
  stub ~cls:"Landroid/util/Log;" ~name:"d" ~shorty:"ILL" "Market.nop";
  stub ~cls:"Landroid/content/Context;" ~name:"getSystemService" ~shorty:"LL"
    "Market.pass";
  stub ~cls:"Ljava/util/List;" ~name:"add" ~shorty:"ZL" "Market.nop";
  stub ~cls:"Landroid/view/View;" ~name:"setOnClickListener" ~shorty:"VL"
    "Market.nop";
  (* the generator calls append statically; the framework's instance
     StringBuilder.append has a different arity, so both coexist *)
  stub ~cls:"Ljava/lang/StringBuilder;" ~name:"append" ~shorty:"LL"
    "Market.pass"

(* the same minimal-but-genuine library {!Apk.so_image} ships *)
let native_lib_prog () =
  Asm.assemble ~base:0x4A000000
    [ Asm.Label "JNI_OnLoad"; Asm.I (Insn.mov 0 (Insn.Imm 4));
      Asm.I Insn.bx_lr ]

let main_class_name package =
  Printf.sprintf "L%s/Main;"
    (String.map (fun c -> if c = '.' then '/' else c) package)

let run ?obs ?focus (model : App_model.t) =
  let device = Device.create () in
  install_stubs device;
  (match model.App_model.main_dex with
   | Some dex ->
     (* the generator can draw the same NativeN name twice; the VM (like
        a real class loader) rejects redefinition, so install each once *)
     let decls =
       List.sort_uniq compare dex.App_model.native_decl_classes
     in
     Device.install_classes device
       (Apk.main_class_of_dex model.App_model.package dex
       :: List.map Apk.native_decl_class decls)
   | None -> ());
  (* the dex's load call looks the library up by its undecorated name *)
  Device.provide_library device "native-lib" (native_lib_prog ());
  let nd = Ndroid.attach ?obs ?focus device in
  (match model.App_model.main_dex with
   | Some _ -> (
     try
       ignore
         (Device.run device (main_class_name model.App_model.package)
            "onCreate" [||])
     with Vm.Java_throw _ | Vm.Dvm_error _ ->
       (* app crashed; whatever leaked before the crash still counts *)
       ())
   | None -> (* pure-native app: no Dalvik entry point to drive *) ());
  let stats = Ndroid.stats nd in
  let c = (Device.vm device).Vm.counters in
  let r =
    Ndroid_core.Report.to_report ~app_name:model.App_model.package nd
  in
  { r with
    Verdict.r_meta =
      r.Verdict.r_meta
      @ [ ("bytecodes", Json.Int c.Vm.bytecodes);
          ("invokes", Json.Int c.Vm.invokes);
          ("jni_crossings", Json.Int (c.Vm.native_calls + c.Vm.jni_env_calls));
          ("focused_methods", Json.Int stats.Ndroid.focused_methods);
          ("skipped_bytecodes", Json.Int stats.Ndroid.skipped_bytecodes) ] }
