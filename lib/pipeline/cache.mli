(** On-disk result cache.

    One canonical-JSON report per file, named by the task's
    {!Analysis.digest} — app content + analysis mode + analyzer version —
    so a re-run of an unchanged corpus under an unchanged binary answers
    from disk, and any change to app, mode or analyzer misses cleanly.
    Corrupt or unreadable entries count as misses (the sweep then simply
    recomputes and overwrites them); writes go through a temp file +
    rename so a killed sweep can never leave a torn entry behind. *)

type t

val create : dir:string -> t
(** Creates [dir] if needed. *)

val find : t -> key:string -> Ndroid_report.Verdict.report option
val store : t -> key:string -> Ndroid_report.Verdict.report -> unit

val find_raw : t -> key:string -> string option
(** A raw side entry (e.g. a native taint summary keyed by library
    digest): the blob as stored, no verdict decoding.  Counts toward
    {!hits}/{!misses}. *)

val store_raw : t -> key:string -> string -> unit
(** Store a raw side entry under [key], atomically (temp file +
    rename), like {!store}. *)

val hits : t -> int
val misses : t -> int
