(** The pool's bounded, sharded work queue.

    Tasks are dealt round-robin across one shard per worker; a worker pops
    from the front of its own shard and, when that runs dry, steals the
    back half of the fullest other shard.  Stealing keeps the sweep busy
    when per-app cost is wildly uneven (one shard hitting the pathological
    APKs must not idle the other workers), while the shard-local common
    case preserves the id-ordered scan that makes cache walks and progress
    output predictable. *)

type 'a t

val create : shards:int -> ?capacity:int -> 'a list -> 'a t
(** Deal the items round-robin over [shards] (>= 1) shards.
    @raise Invalid_argument if the item count exceeds [capacity]
    (default 1_000_000) — the queue is bounded by construction; a sweep
    larger than that should be split into multiple sweeps. *)

val pop : 'a t -> shard:int -> 'a option
(** Next item for that shard's worker (own front, else steal).  [None]
    when every shard is empty. *)

val remaining : 'a t -> int
val steals : 'a t -> int
(** How many times a pop had to steal from a foreign shard. *)
