(** The pipeline's bounded, sharded work queue — two consumption
    disciplines over one structure.

    {b Batch (the pool)}: tasks are dealt round-robin across one shard per
    worker at {!create} time; a worker pops from the front of its own
    shard ({!pop}) and, when that runs dry, steals the back half of the
    fullest other shard.  Stealing keeps the sweep busy when per-app cost
    is wildly uneven, while the shard-local common case preserves the
    id-ordered scan that makes cache walks and progress output
    predictable.

    {b Service (the daemon)}: the queue starts empty ({!create_empty})
    with one shard per client slot; admission {!push}es onto the
    submitting client's shard (refused at capacity — the caller sheds),
    and the dispatcher {!pop_rr}s round-robin across non-empty shards, so
    one client saturating the daemon cannot starve the others: every
    client's oldest request is at most one round away. *)

type 'a t

val create : shards:int -> ?capacity:int -> 'a list -> 'a t
(** Deal the items round-robin over [shards] (>= 1) shards.
    @raise Invalid_argument if the item count exceeds [capacity]
    (default 1_000_000) — the queue is bounded by construction; a sweep
    larger than that should be split into multiple sweeps. *)

val create_empty : shards:int -> ?capacity:int -> unit -> 'a t
(** An empty queue for dynamic admission via {!push}. *)

val push : 'a t -> shard:int -> 'a -> bool
(** Append to the back of that shard, O(1) amortized.  [false] — and the
    item is not enqueued — when the queue already holds [capacity] items:
    the admission bound that turns overload into explicit [Shed]
    responses instead of unbounded memory growth. *)

val pop : 'a t -> shard:int -> 'a option
(** Next item for that shard's worker (own front, else steal).  [None]
    when every shard is empty. *)

val pop_rr : 'a t -> 'a option
(** Next item in round-robin order across non-empty shards, resuming the
    scan after the shard served last — per-client fairness when shards
    are client slots.  Never steals (any consumer serves any shard). *)

val clear_shard : 'a t -> shard:int -> 'a list
(** Drop and return everything queued on that shard (a disconnected
    client's not-yet-dispatched requests). *)

val remaining : 'a t -> int
val shards : 'a t -> int
val shard_depth : 'a t -> shard:int -> int
val steals : 'a t -> int
(** How many times a pop had to steal from a foreign shard. *)
