module Vm = Ndroid_dalvik.Vm
module Interp = Ndroid_dalvik.Interp
module Classes = Ndroid_dalvik.Classes
module Dvalue = Ndroid_dalvik.Dvalue
module Heap = Ndroid_dalvik.Heap
module Jbuilder = Ndroid_dalvik.Jbuilder
module Machine = Ndroid_emulator.Machine
module Layout = Ndroid_emulator.Layout
module Cpu = Ndroid_arm.Cpu
module Memory = Ndroid_arm.Memory
module Asm = Ndroid_arm.Asm
module Taint = Ndroid_taint.Taint
module Indirect_ref = Ndroid_jni.Indirect_ref
module Arg_pool = Ndroid_jni.Arg_pool
module Summary = Ndroid_summary.Summary
module A = Ndroid_android

type taint_loc = Loc_mem of int * int | Loc_reg of int | Loc_iref of int

type jni_call = {
  jc_method : Classes.method_def;
  jc_addr : int;
  jc_entry : int;
  jc_args : Vm.tval array;
  jc_slots : (int * Taint.t) array;
}

type t = {
  d_vm : Vm.t;
  d_machine : Machine.t;
  d_fs : A.Filesystem.t;
  d_net : A.Network.t;
  d_nheap : A.Native_heap.t;
  d_monitor : A.Sink_monitor.t;
  d_irefs : Indirect_ref.t;
  d_profile : A.Device_profile.t;
  d_libc : A.Libc_model.ctx;
  available_libs : (string, Asm.program) Hashtbl.t;
  loaded_libs : (string, Asm.program) Hashtbl.t;
  symbols : (string, int) Hashtbl.t;
  registered_natives : (string * string, int) Hashtbl.t;
      (* (class, method) -> entry point, via RegisterNatives *)
  dl_handles : (int, Asm.program) Hashtbl.t;
  mutable next_dl_handle : int;
  (* JNI handle tables *)
  class_handles : (int, string) Hashtbl.t;
  class_handle_of : (string, int) Hashtbl.t;
  mutable next_class_handle : int;
  method_handles : (int, Classes.method_def) Hashtbl.t;
  mutable next_method_handle : int;
  field_handles : (int, string * string * bool) Hashtbl.t;  (* class, field, static *)
  mutable next_field_handle : int;
  (* bridge state *)
  mutable cur_call : jni_call option;
  mutable bridge_result : Vm.tval;
  mutable pending_interp : (Vm.tval array * Classes.method_def) option;
  mutable pending_throw : Vm.tval option;
  (* analysis plug points *)
  ret_policy : (jni_call -> r0:int -> r1:int -> Taint.t) ref;
  taint_source : (taint_loc -> Taint.t) ref;
  (* pooled marshaling buffers: reused across JNI crossings, emitted into
     one exactly-sized array per call (see Ndroid_jni.Arg_pool) *)
  d_slot_pool : (int * Taint.t) Arg_pool.t;
  d_arg_pool : Vm.tval Arg_pool.t;
  mutable d_obs : Ndroid_obs.Ring.t;
  (* native taint summaries: per loaded library, derived at load time and
     applied by the JNI bridge instead of emulating the body when exact *)
  lib_summaries : (string, Summary.lib) Hashtbl.t;
  mutable use_summaries : bool;
  mutable summary_taint : int -> (int * int) array -> unit;
      (* (entry addr, masks): source-policy mimicry + fused-mask
         application against the attached taint engine; installed by the
         analysis attach layer, no-op when nothing is attached *)
  mutable summaries_applied : int;
  mutable summaries_rejected : int;
}

let jni_env_ptr = Layout.libdvm_base + 0x7F000

let vm d = d.d_vm
let machine d = d.d_machine
let fs d = d.d_fs
let net d = d.d_net
let native_heap d = d.d_nheap
let monitor d = d.d_monitor
let irefs d = d.d_irefs
let profile d = d.d_profile
let libc_ctx d = d.d_libc
let jni_return_policy d = d.ret_policy
let native_taint_source d = d.taint_source
let obs d = d.d_obs

(* One hub observes the whole device: the Dalvik interpreter shares it,
   and machine-level events (instructions, host boundaries) stream into it
   when its [tracing] gate is up. *)
let set_obs d ring =
  d.d_obs <- ring;
  d.d_vm.Vm.obs <- ring;
  Ndroid_emulator.Trace.listen ring d.d_machine
let current_jni_call d = d.cur_call
let pending_interp_args d = d.pending_interp

let mask32 = 0xFFFFFFFF

(* ---------------- handle tables ---------------- *)

let normalize_class_name name =
  if String.length name > 0 && name.[0] = 'L' then name else "L" ^ name ^ ";"

let class_handle d name =
  let name = normalize_class_name name in
  match Hashtbl.find_opt d.class_handle_of name with
  | Some h -> h
  | None ->
    let h = 0x70000000 lor (d.next_class_handle lsl 2) in
    d.next_class_handle <- d.next_class_handle + 1;
    Hashtbl.replace d.class_handles h name;
    Hashtbl.replace d.class_handle_of name h;
    h

let class_of_handle d h = Hashtbl.find_opt d.class_handles h

let method_handle d m =
  let h = 0x71000000 lor (d.next_method_handle lsl 2) in
  d.next_method_handle <- d.next_method_handle + 1;
  Hashtbl.replace d.method_handles h m;
  h

let field_handle d cls fld static =
  let h = 0x72000000 lor (d.next_field_handle lsl 2) in
  d.next_field_handle <- d.next_field_handle + 1;
  Hashtbl.replace d.field_handles h (cls, fld, static);
  h

(* ---------------- value marshaling ---------------- *)

let iref_of_value d = function
  | Dvalue.Obj id -> Indirect_ref.add d.d_irefs ~obj_id:id
  | Dvalue.Null -> 0
  | Dvalue.Int _ | Dvalue.Long _ | Dvalue.Float _ | Dvalue.Double _ ->
    invalid_arg "iref_of_value: not a reference"

let value_of_iref d iref =
  if iref = 0 then Dvalue.Null
  else
    match Indirect_ref.resolve d.d_irefs iref with
    | Some id -> Dvalue.Obj id
    | None -> Dvalue.Null

let obj_taint d = function
  | Dvalue.Obj id -> (
    match Heap.get d.d_vm.Vm.heap id with
    | o -> o.Heap.taint
    | exception Not_found -> Taint.clear)
  | Dvalue.Null | Dvalue.Int _ | Dvalue.Long _ | Dvalue.Float _ | Dvalue.Double _ ->
    Taint.clear

(* Marshal one Java argument into AAPCS slots, pushed onto the pooled
   buffer instead of returned as a fresh list. *)
let push_slots_of_arg d pool ty ((v, t) : Vm.tval) =
  match ty with
  | 'J' ->
    let n = Dvalue.as_long v in
    Arg_pool.push pool (Int64.to_int (Int64.logand n 0xFFFFFFFFL), t);
    Arg_pool.push pool (Int64.to_int (Int64.shift_right_logical n 32), t)
  | 'D' ->
    let bits = Int64.bits_of_float (Dvalue.as_double v) in
    Arg_pool.push pool (Int64.to_int (Int64.logand bits 0xFFFFFFFFL), t);
    Arg_pool.push pool (Int64.to_int (Int64.shift_right_logical bits 32), t)
  | 'F' ->
    Arg_pool.push pool
      (Int32.to_int (Int32.bits_of_float (Dvalue.as_float v)) land mask32, t)
  | 'L' -> Arg_pool.push pool (iref_of_value d v, Taint.union t (obj_taint d v))
  | _ -> Arg_pool.push pool (Int32.to_int (Dvalue.as_int v) land mask32, t)

let value_of_raw d ty ~r0 ~r1 =
  match ty with
  | 'V' -> Dvalue.zero
  | 'L' -> value_of_iref d r0
  | 'J' ->
    Dvalue.Long
      (Int64.logor (Int64.of_int r0) (Int64.shift_left (Int64.of_int r1) 32))
  | 'D' ->
    Dvalue.Double
      (Int64.float_of_bits
         (Int64.logor (Int64.of_int r0) (Int64.shift_left (Int64.of_int r1) 32)))
  | 'F' -> Dvalue.Float (Int32.float_of_bits (Int32.of_int r0))
  | 'Z' | 'B' | 'C' | 'S' | 'I' -> Dvalue.Int (Int32.of_int r0)
  | c -> raise (Vm.Dvm_error (Printf.sprintf "bad return shorty %c" c))

(* ---------------- native library management ---------------- *)

let provide_library d name prog = Hashtbl.replace d.available_libs name prog

let load_library d name =
  if not (Hashtbl.mem d.loaded_libs name) then begin
    let prog = Hashtbl.find d.available_libs name in
    Machine.load_program d.d_machine prog;
    Hashtbl.replace d.loaded_libs name prog;
    (* summarize the image now (cheap, digest-cached); whether the bridge
       uses the summaries is a separate switch *)
    Hashtbl.replace d.lib_summaries name
      (Summary.derive_cached (Machine.mem d.d_machine) prog);
    List.iter
      (fun (sym, _addr) -> Hashtbl.replace d.symbols sym (Asm.fn_addr prog sym))
      (Asm.symbols prog);
    (* a library with a JNI_OnLoad runs it at load time, as on Android —
       this is where apps call RegisterNatives *)
    match Asm.fn_addr prog "JNI_OnLoad" with
    | entry ->
      ignore
        (Machine.call_native d.d_machine ~addr:entry ~args:[ jni_env_ptr; 0 ] ())
    | exception Not_found -> ()
  end

let dl_open d name =
  (* accept "libfoo.so", "foo.so" or plain "foo" *)
  let base = Filename.remove_extension (Filename.basename name) in
  let base =
    if String.length base > 3 && String.sub base 0 3 = "lib" then
      String.sub base 3 (String.length base - 3)
    else base
  in
  let resolved =
    if Hashtbl.mem d.available_libs name then Some name
    else if Hashtbl.mem d.available_libs base then Some base
    else None
  in
  match resolved with
  | None -> 0
  | Some lib ->
    load_library d lib;
    let prog = Hashtbl.find d.loaded_libs lib in
    let handle = d.next_dl_handle in
    d.next_dl_handle <- handle + 2;
    Hashtbl.replace d.dl_handles handle prog;
    handle

let dl_sym d handle sym =
  match Hashtbl.find_opt d.dl_handles handle with
  | Some prog -> (
    match Asm.fn_addr prog sym with a -> a | exception Not_found -> 0)
  | None -> 0

let native_symbol d sym =
  match Hashtbl.find_opt d.symbols sym with
  | Some addr -> addr
  | None -> raise Not_found

(* ---------------- JNI call bridge: Java -> native ---------------- *)

let dvm_call_jni_method_addr d = Machine.host_fn_addr d.d_machine "dvmCallJNIMethod"

let set_use_summaries d b = d.use_summaries <- b
let use_summaries d = d.use_summaries
let set_summary_taint d f = d.summary_taint <- f
let summaries_applied d = d.summaries_applied
let summaries_rejected d = d.summaries_rejected

let find_summary d addr =
  Hashtbl.fold
    (fun _ l acc ->
      match acc with
      | Some _ -> acc
      | None -> (
        match Summary.find l addr with
        | Some fn -> Some (l, fn)
        | None -> None))
    d.lib_summaries None

(* The summary fast path: skip the dvmCallJNIMethod bridge (and the native
   body emulation behind it) entirely when the target function has an exact
   summary.  Returns [true] with [d.bridge_result] set, or [false] to fall
   back to emulation — a clean library, an [Exact] verdict, and a register-
   only call shape (≤ 4 slots: stack-borne arguments would need the memory
   taints the policy writes at sp, which only the emulated path sees) are
   all required. *)
let try_summary d jc =
  if not d.use_summaries then false
  else
    match find_summary d jc.jc_addr with
    | None -> false
    | Some (l, fn) -> (
      match fn.Summary.f_verdict with
      | Summary.Emulate _ -> false
      | Summary.Exact ->
        if Summary.dirty l || Array.length jc.jc_slots > 4 then false
        else begin
          (* taint first (source-policy mimicry consumes entry state),
             then values *)
          d.summary_taint jc.jc_addr fn.Summary.f_masks;
          let r0, r1 =
            Summary.eval fn ~cpu:(Machine.cpu d.d_machine)
              ~mem:(Machine.mem d.d_machine) ~slots:jc.jc_slots
          in
          let rt = Classes.return_type jc.jc_method in
          let v = value_of_raw d rt ~r0 ~r1 in
          let taint = !(d.ret_policy) jc ~r0 ~r1 in
          d.bridge_result <- (v, taint);
          d.summaries_applied <- d.summaries_applied + 1;
          let o = d.d_obs in
          if o.Ndroid_obs.Ring.on then
            Ndroid_obs.Ring.emit_summary_apply o
              ~name:(Classes.qualified_name jc.jc_method)
              ~taint:(Taint.to_bits taint);
          true
        end)

let native_dispatch d vm jm (args : Vm.tval array) =
  ignore vm;
  let symbol =
    match jm.Classes.m_body with
    | Classes.Native s -> s
    | Classes.Bytecode _ | Classes.Intrinsic _ -> assert false
  in
  let addr =
    match
      Hashtbl.find_opt d.registered_natives (jm.Classes.m_class, jm.Classes.m_name)
    with
    | Some a -> a
    | None -> (
      match Hashtbl.find_opt d.symbols symbol with
      | Some a -> a
      | None ->
        raise
          (Vm.Dvm_error
             (Printf.sprintf "UnsatisfiedLinkError: %s (library not loaded?)"
                symbol)))
  in
  (* marshal: (env, this|class, params...) through the pooled buffer *)
  let params = Classes.shorty_params jm.Classes.m_shorty in
  let pool = d.d_slot_pool in
  Arg_pool.reset pool;
  Arg_pool.push pool (jni_env_ptr, Taint.clear);
  let first_param =
    if jm.Classes.m_static then begin
      Arg_pool.push pool (class_handle d jm.Classes.m_class, Taint.clear);
      0
    end
    else begin
      if Array.length args = 0 then
        raise (Vm.Dvm_error "native instance method without this");
      let v, t = args.(0) in
      Arg_pool.push pool (iref_of_value d v, Taint.union t (obj_taint d v));
      1
    end
  in
  List.iteri
    (fun i ty -> push_slots_of_arg d pool ty args.(first_param + i))
    params;
  let slots = Arg_pool.emit pool in
  let jc =
    { jc_method = jm; jc_addr = addr land lnot 1; jc_entry = addr; jc_args = args;
      jc_slots = slots }
  in
  let saved_call = d.cur_call in
  d.cur_call <- Some jc;
  d.pending_throw <- None;
  let o = d.d_obs in
  let observed = o.Ndroid_obs.Ring.on in
  if observed then begin
    let crossing_taint =
      Array.fold_left
        (fun acc (_, t) -> acc lor Taint.to_bits t)
        0 slots
    in
    Ndroid_obs.Ring.emit_jni_begin o ~name:(Classes.qualified_name jm)
      ~direction:"java->native" ~taint:crossing_taint;
    Ndroid_obs.Metrics.observe_int
      (Ndroid_obs.Metrics.histogram (Ndroid_obs.Ring.metrics o) "jni_slots")
      (Array.length slots)
  end;
  (* The bridge itself is a hooked libdvm function: fire its events, then
     transfer control to the native method — unless an exact summary lets
     us skip the crossing altogether. *)
  if not (try_summary d jc) then begin
    if d.use_summaries then
      d.summaries_rejected <- d.summaries_rejected + 1;
    Machine.call_host d.d_machine ~from_:Layout.libdvm_base "dvmCallJNIMethod"
  end;
  let result = d.bridge_result in
  d.cur_call <- saved_call;
  if observed then
    Ndroid_obs.Ring.emit_jni_end o ~name:(Classes.qualified_name jm)
      ~direction:"java->native" ~taint:(Taint.to_bits (snd result));
  match d.pending_throw with
  | Some exn ->
    d.pending_throw <- None;
    raise (Vm.Java_throw exn)
  | None -> result

(* The body of the mounted dvmCallJNIMethod host function. *)
let run_call_bridge d _cpu _mem =
  match d.cur_call with
  | None -> raise (Vm.Dvm_error "dvmCallJNIMethod without a pending call")
  | Some jc ->
    let reg_args, stack_args =
      let all = Array.to_list (Array.map fst jc.jc_slots) in
      if List.length all <= 4 then (all, [])
      else (List.filteri (fun i _ -> i < 4) all, List.filteri (fun i _ -> i >= 4) all)
    in
    Machine.emit_branch d.d_machine ~from_:(dvm_call_jni_method_addr d)
      ~to_:jc.jc_addr ~is_call:true;
    let r0, r1 =
      Machine.call_native d.d_machine ~addr:jc.jc_entry ~args:reg_args ~stack_args ()
    in
    let rt = Classes.return_type jc.jc_method in
    let v = value_of_raw d rt ~r0 ~r1 in
    let taint = !(d.ret_policy) jc ~r0 ~r1 in
    d.bridge_result <- (v, taint)

(* ---------------- JNI env: native -> Java and helpers ---------------- *)

let arg = A.Libc_model.arg

let cstring d addr = Memory.read_cstring (Machine.mem d.d_machine) addr

let string_obj d iref =
  match value_of_iref d iref with
  | Dvalue.Obj id -> (
    match (Heap.get d.d_vm.Vm.heap id).Heap.kind with
    | Heap.String s -> Some (id, s)
    | Heap.Array _ | Heap.Instance _ -> None)
  | Dvalue.Null | Dvalue.Int _ | Dvalue.Long _ | Dvalue.Float _ | Dvalue.Double _ ->
    None

let query_taint d loc = !(d.taint_source) loc

(* Read the arguments of a native→Java invocation, pushing them onto the
   device's pooled argument buffer (the caller resets the pool and pushes
   the receiver first, then emits one exactly-sized frame).  [style]
   selects where they come from: registers+stack varargs, a va_list block,
   or a jvalue array (8 bytes per element, like the real union). *)
let read_java_args d cpu mem ~style ~first_vararg ~params =
  let vararg_slot = ref first_vararg in
  let next_reg_slot () =
    let i = !vararg_slot in
    incr vararg_slot;
    let v = arg cpu mem i in
    let loc = if i < 4 then Loc_reg i else Loc_mem (Cpu.sp cpu + (4 * (i - 4)), 4) in
    (v, loc)
  in
  let va_ptr = ref (match style with `Va_list p -> p | _ -> 0) in
  let next_va () =
    let p = !va_ptr in
    va_ptr := p + 4;
    (Memory.read_u32 mem p, Loc_mem (p, 4))
  in
  let jv_base = match style with `Jvalue_array p -> p | _ -> 0 in
  let jv_index = ref 0 in
  let next_jv ~wide =
    let p = jv_base + (!jv_index * 8) in
    incr jv_index;
    if wide then
      ((Memory.read_u32 mem p, Memory.read_u32 mem (p + 4)), Loc_mem (p, 8))
    else ((Memory.read_u32 mem p, 0), Loc_mem (p, 4))
  in
  let next ~wide =
    match style with
    | `Varargs ->
      let lo, loc1 = next_reg_slot () in
      if wide then
        let hi, _loc2 = next_reg_slot () in
        ((lo, hi), loc1)
      else ((lo, 0), loc1)
    | `Va_list _ ->
      let lo, loc1 = next_va () in
      if wide then
        let hi, _ = next_va () in
        ((lo, hi), loc1)
      else ((lo, 0), loc1)
    | `Jvalue_array _ -> next_jv ~wide
  in
  List.iter
    (fun ty ->
      let wide = ty = 'J' || ty = 'D' in
      let (lo, hi), loc = next ~wide in
      let v = value_of_raw d ty ~r0:lo ~r1:hi in
      let t = query_taint d loc in
      let t =
        match ty with
        | 'L' -> (
          Taint.union t
            (match Indirect_ref.resolve d.d_irefs lo with
             | Some _ -> query_taint d (Loc_iref lo)
             | None -> Taint.clear))
        | _ -> t
      in
      Arg_pool.push d.d_arg_pool (v, t))
    params

(* dvmCallMethod* handler: decode irefs, build the frame, hand to
   dvmInterpret.  [style]'s data was captured by the Call*Method* wrapper
   before it delegated here (it lives in pending_interp). *)
let run_dvm_interpret d _cpu _mem =
  match d.pending_interp with
  | None -> raise (Vm.Dvm_error "dvmInterpret without a pending frame")
  | Some (args, jm) ->
    d.pending_interp <- None;
    let result = Interp.invoke d.d_vm jm args in
    d.d_vm.Vm.ret <- result

let resolve_virtual d jm receiver =
  if jm.Classes.m_static then jm
  else
    match receiver with
    | Dvalue.Obj id -> (
      match (Heap.get d.d_vm.Vm.heap id).Heap.kind with
      | Heap.Instance { cls; _ } -> (
        try Vm.find_method d.d_vm cls jm.Classes.m_name with Vm.Dvm_error _ -> jm)
      | Heap.String _ | Heap.Array _ -> jm)
    | Dvalue.Null | Dvalue.Int _ | Dvalue.Long _ | Dvalue.Float _ | Dvalue.Double _
      ->
      jm

(* Shared implementation of every Call<Type>Method{,V,A} entry (Table II). *)
let run_call_java d variant static_ ret_ty cpu mem =
  d.d_vm.Vm.counters.Vm.jni_env_calls <-
    d.d_vm.Vm.counters.Vm.jni_env_calls + 1;
  let mid = arg cpu mem 2 in
  let jm =
    match Hashtbl.find_opt d.method_handles mid with
    | Some m -> m
    | None -> raise (Vm.Dvm_error (Printf.sprintf "bad jmethodID 0x%x" mid))
  in
  let params = Classes.shorty_params jm.Classes.m_shorty in
  let style =
    match variant with
    | `Plain -> `Varargs
    | `V -> `Va_list (arg cpu mem 3)
    | `A -> `Jvalue_array (arg cpu mem 3)
  in
  let first_vararg = 3 in
  let receiver_iref = arg cpu mem 1 in
  Arg_pool.reset d.d_arg_pool;
  if not static_ then begin
    let this_v = value_of_iref d receiver_iref in
    let this_t = query_taint d (Loc_iref receiver_iref) in
    Arg_pool.push d.d_arg_pool (this_v, this_t)
  end;
  read_java_args d cpu mem ~style ~first_vararg ~params;
  let full_args = Arg_pool.emit d.d_arg_pool in
  let jm =
    if static_ then jm
    else resolve_virtual d jm (fst full_args.(0))
  in
  (* Fig. 5: the wrapper jumps into dvmCallMethod*, which scans arguments
     (dvmDecodeIndirectRef per object) and then enters dvmInterpret. *)
  let self_addr =
    match Machine.find_host_fn d.d_machine (Cpu.pc cpu) with
    | Some hf -> hf.Machine.hf_addr
    | None -> Layout.libdvm_base
  in
  let inner =
    match variant with
    | `Plain -> "dvmCallMethod"
    | `V -> "dvmCallMethodV"
    | `A -> "dvmCallMethodA"
  in
  d.pending_interp <- Some (full_args, jm);
  let o = d.d_obs in
  let observed = o.Ndroid_obs.Ring.on in
  if observed then begin
    let crossing_taint =
      Array.fold_left
        (fun acc (_, t) -> acc lor Taint.to_bits t)
        0 full_args
    in
    Ndroid_obs.Ring.emit_jni_begin o ~name:(Classes.qualified_name jm)
      ~direction:"native->java" ~taint:crossing_taint
  end;
  Machine.call_host d.d_machine ~from_:self_addr inner;
  if observed then
    Ndroid_obs.Ring.emit_jni_end o ~name:(Classes.qualified_name jm)
      ~direction:"native->java"
      ~taint:(Taint.to_bits (snd d.d_vm.Vm.ret));
  (* result (value and taint) is in vm.ret; convert to raw for the caller *)
  let v, _t = d.d_vm.Vm.ret in
  (match ret_ty with
   | 'V' -> Cpu.set_reg cpu 0 0
   | 'L' ->
     Cpu.set_reg cpu 0 (match v with Dvalue.Null -> 0 | _ -> iref_of_value d v)
   | 'J' ->
     let n = Dvalue.as_long v in
     Cpu.set_reg cpu 0 (Int64.to_int (Int64.logand n 0xFFFFFFFFL));
     Cpu.set_reg cpu 1 (Int64.to_int (Int64.shift_right_logical n 32))
   | 'D' ->
     let bits = Int64.bits_of_float (Dvalue.as_double v) in
     Cpu.set_reg cpu 0 (Int64.to_int (Int64.logand bits 0xFFFFFFFFL));
     Cpu.set_reg cpu 1 (Int64.to_int (Int64.shift_right_logical bits 32))
   | 'F' ->
     Cpu.set_reg cpu 0 (Int32.to_int (Int32.bits_of_float (Dvalue.as_float v)) land mask32)
   | _ -> Cpu.set_reg cpu 0 (Int32.to_int (Dvalue.as_int v) land mask32))

(* dvmCallMethod* body: emits the dvmDecodeIndirectRef scans, then enters
   the interpreter. *)
let run_dvm_call_method d name cpu mem =
  ignore mem;
  (match d.pending_interp with
   | Some (args, _) ->
     Array.iter
       (fun (v, _) ->
         match v with
         | Dvalue.Obj _ ->
           Machine.call_host d.d_machine
             ~from_:(Machine.host_fn_addr d.d_machine name)
             "dvmDecodeIndirectRef"
         | Dvalue.Null | Dvalue.Int _ | Dvalue.Long _ | Dvalue.Float _
         | Dvalue.Double _ ->
           ())
       args
   | None -> ());
  Machine.call_host d.d_machine ~from_:(Machine.host_fn_addr d.d_machine name)
    "dvmInterpret";
  ignore cpu

(* ---------------- JNI env installation ---------------- *)

let jni_types = [ 'V'; 'L'; 'Z'; 'B'; 'C'; 'S'; 'I'; 'J'; 'F'; 'D' ]

let type_name = function
  | 'V' -> "Void"
  | 'L' -> "Object"
  | 'Z' -> "Boolean"
  | 'B' -> "Byte"
  | 'C' -> "Char"
  | 'S' -> "Short"
  | 'I' -> "Int"
  | 'J' -> "Long"
  | 'F' -> "Float"
  | 'D' -> "Double"
  | _ -> assert false

let install_jni d =
  let next_addr = ref (Layout.libdvm_base + 0x1000) in
  let mount name run =
    let addr = !next_addr in
    next_addr := addr + 0x40;
    ignore
      (Machine.mount_host_fn d.d_machine ~lib:"libdvm.so" ~name ~addr (fun cpu mem ->
           run cpu mem))
  in
  (* --- internals (MAF column of Table III + bridge machinery) --- *)
  mount "dvmCallJNIMethod" (fun cpu mem -> run_call_bridge d cpu mem);
  mount "dvmInterpret" (fun cpu mem -> run_dvm_interpret d cpu mem);
  mount "dvmCallMethod" (run_dvm_call_method d "dvmCallMethod");
  mount "dvmCallMethodV" (run_dvm_call_method d "dvmCallMethodV");
  mount "dvmCallMethodA" (run_dvm_call_method d "dvmCallMethodA");
  mount "dvmDecodeIndirectRef" (fun _cpu _mem -> ());
  mount "dvmCreateStringFromCstr" (fun cpu mem ->
      (* r1 = char* ; returns the real object address in r0 (Fig. 6) *)
      let s = Memory.read_cstring mem (arg cpu mem 1) in
      let o = Heap.alloc_string d.d_vm.Vm.heap s in
      Cpu.set_reg cpu 0 o.Heap.addr);
  mount "dvmCreateStringFromUnicode" (fun cpu mem ->
      let ptr = arg cpu mem 1 and len = arg cpu mem 2 in
      let b = Buffer.create len in
      for i = 0 to len - 1 do
        Buffer.add_char b (Char.chr (Memory.read_u16 mem (ptr + (2 * i)) land 0xFF))
      done;
      let o = Heap.alloc_string d.d_vm.Vm.heap (Buffer.contents b) in
      Cpu.set_reg cpu 0 o.Heap.addr);
  mount "dvmAllocObject" (fun cpu _mem ->
      let h = Cpu.reg cpu 1 in
      match class_of_handle d h with
      | Some cls ->
        let o = Heap.alloc_instance d.d_vm.Vm.heap cls (Vm.instance_size d.d_vm cls) in
        Cpu.set_reg cpu 0 o.Heap.addr
      | None -> raise (Vm.Dvm_error (Printf.sprintf "bad jclass 0x%x" h)));
  mount "dvmAllocPrimitiveArray" (fun cpu _mem ->
      let len = Cpu.reg cpu 1 in
      let o = Heap.alloc_array d.d_vm.Vm.heap "prim" len in
      Cpu.set_reg cpu 0 o.Heap.addr);
  mount "dvmAllocArrayByClass" (fun cpu _mem ->
      let len = Cpu.reg cpu 2 in
      let o = Heap.alloc_array d.d_vm.Vm.heap "Ljava/lang/Object;" len in
      Cpu.set_reg cpu 0 o.Heap.addr);
  mount "initException" (fun cpu mem ->
      (* r1 = class handle, r2 = message char* *)
      let cls =
        match class_of_handle d (arg cpu mem 1) with
        | Some c -> c
        | None -> "Ljava/lang/Exception;"
      in
      let self = Machine.host_fn_addr d.d_machine "initException" in
      (* create the message string through the normal allocation path *)
      Cpu.set_reg cpu 1 (arg cpu mem 2);
      Machine.call_host d.d_machine ~from_:self "dvmCreateStringFromCstr";
      let str_addr = Cpu.reg cpu 0 in
      let msg_obj =
        match Heap.find_by_addr d.d_vm.Vm.heap str_addr with
        | Some o -> o
        | None -> raise (Vm.Dvm_error "initException: lost message string")
      in
      let exn_obj =
        Heap.alloc_instance d.d_vm.Vm.heap cls
          (max 1 (try Vm.instance_size d.d_vm cls with Vm.Dvm_error _ -> 1))
      in
      (match exn_obj.Heap.kind with
       | Heap.Instance { values; taints; _ } ->
         values.(0) <- Dvalue.Obj msg_obj.Heap.id;
         taints.(0) <- msg_obj.Heap.taint
       | Heap.String _ | Heap.Array _ -> ());
      Cpu.set_reg cpu 0 exn_obj.Heap.addr);

  (* --- class / method / field lookup --- *)
  mount "FindClass" (fun cpu mem ->
      let name = cstring d (arg cpu mem 1) in
      let norm = normalize_class_name name in
      ignore (Vm.find_class d.d_vm norm);
      Cpu.set_reg cpu 0 (class_handle d norm));
  mount "GetObjectClass" (fun cpu mem ->
      match value_of_iref d (arg cpu mem 1) with
      | Dvalue.Obj id ->
        let cls =
          match (Heap.get d.d_vm.Vm.heap id).Heap.kind with
          | Heap.Instance { cls; _ } -> cls
          | Heap.String _ -> "Ljava/lang/String;"
          | Heap.Array _ -> "Ljava/lang/Object;"
        in
        Cpu.set_reg cpu 0 (class_handle d cls)
      | _ -> Cpu.set_reg cpu 0 0);
  let get_method_id cpu mem =
    let h = arg cpu mem 1 in
    let name = cstring d (arg cpu mem 2) in
    match class_of_handle d h with
    | Some cls ->
      let m = Vm.find_method d.d_vm cls name in
      Cpu.set_reg cpu 0 (method_handle d m)
    | None -> raise (Vm.Dvm_error (Printf.sprintf "bad jclass 0x%x" h))
  in
  mount "GetMethodID" get_method_id;
  mount "GetStaticMethodID" get_method_id;
  let get_field_id static cpu mem =
    let h = arg cpu mem 1 in
    let name = cstring d (arg cpu mem 2) in
    match class_of_handle d h with
    | Some cls -> Cpu.set_reg cpu 0 (field_handle d cls name static)
    | None -> raise (Vm.Dvm_error (Printf.sprintf "bad jclass 0x%x" h))
  in
  mount "GetFieldID" (get_field_id false);
  mount "GetStaticFieldID" (get_field_id true);

  (* --- Table II: the 90 Call<Type>Method{,V,A} wrappers --- *)
  List.iter
    (fun ty ->
      let tn = type_name ty in
      let families =
        [ (Printf.sprintf "Call%sMethod" tn, `Plain, false);
          (Printf.sprintf "CallNonvirtual%sMethod" tn, `Plain, false);
          (Printf.sprintf "CallStatic%sMethod" tn, `Plain, true);
          (Printf.sprintf "Call%sMethodV" tn, `V, false);
          (Printf.sprintf "CallNonvirtual%sMethodV" tn, `V, false);
          (Printf.sprintf "CallStatic%sMethodV" tn, `V, true);
          (Printf.sprintf "Call%sMethodA" tn, `A, false);
          (Printf.sprintf "CallNonvirtual%sMethodA" tn, `A, false);
          (Printf.sprintf "CallStatic%sMethodA" tn, `A, true) ]
      in
      List.iter
        (fun (name, variant, static_) ->
          mount name (fun cpu mem -> run_call_java d variant static_ ty cpu mem))
        families)
    jni_types;

  (* --- object creation (NOF column of Table III) --- *)
  let new_object style cpu mem =
    let self = Cpu.pc cpu in
    let self =
      match Machine.find_host_fn d.d_machine self with
      | Some hf -> hf.Machine.hf_addr
      | None -> Layout.libdvm_base
    in
    Machine.call_host d.d_machine ~from_:self "dvmAllocObject";
    let addr = Cpu.reg cpu 0 in
    let o =
      match Heap.find_by_addr d.d_vm.Vm.heap addr with
      | Some o -> o
      | None -> raise (Vm.Dvm_error "NewObject: allocation lost")
    in
    let iref = Indirect_ref.add d.d_irefs ~obj_id:o.Heap.id in
    (* run the constructor with the fresh object as receiver *)
    let mid = arg cpu mem 2 in
    (match Hashtbl.find_opt d.method_handles mid with
     | Some ctor ->
       let params = Classes.shorty_params ctor.Classes.m_shorty in
       let style_v =
         match style with
         | `Plain -> `Varargs
         | `V -> `Va_list (arg cpu mem 3)
         | `A -> `Jvalue_array (arg cpu mem 3)
       in
       Arg_pool.reset d.d_arg_pool;
       Arg_pool.push d.d_arg_pool (Dvalue.Obj o.Heap.id, Taint.clear);
       read_java_args d cpu mem ~style:style_v ~first_vararg:3 ~params;
       let full = Arg_pool.emit d.d_arg_pool in
       d.pending_interp <- Some (full, ctor);
       Machine.call_host d.d_machine ~from_:self "dvmInterpret"
     | None -> ());
    Cpu.set_reg cpu 0 iref
  in
  mount "NewObject" (new_object `Plain);
  mount "NewObjectV" (new_object `V);
  mount "NewObjectA" (new_object `A);
  mount "NewStringUTF" (fun cpu mem ->
      ignore mem;
      let self = Machine.host_fn_addr d.d_machine "NewStringUTF" in
      (* r1 already holds the char*; delegate to the MAF *)
      Machine.call_host d.d_machine ~from_:self "dvmCreateStringFromCstr";
      let addr = Cpu.reg cpu 0 in
      match Heap.find_by_addr d.d_vm.Vm.heap addr with
      | Some o -> Cpu.set_reg cpu 0 (Indirect_ref.add d.d_irefs ~obj_id:o.Heap.id)
      | None -> raise (Vm.Dvm_error "NewStringUTF: allocation lost"));
  mount "NewString" (fun cpu mem ->
      ignore mem;
      let self = Machine.host_fn_addr d.d_machine "NewString" in
      Machine.call_host d.d_machine ~from_:self "dvmCreateStringFromUnicode";
      let addr = Cpu.reg cpu 0 in
      match Heap.find_by_addr d.d_vm.Vm.heap addr with
      | Some o -> Cpu.set_reg cpu 0 (Indirect_ref.add d.d_irefs ~obj_id:o.Heap.id)
      | None -> raise (Vm.Dvm_error "NewString: allocation lost"));
  mount "NewObjectArray" (fun cpu mem ->
      ignore mem;
      let self = Machine.host_fn_addr d.d_machine "NewObjectArray" in
      Machine.call_host d.d_machine ~from_:self "dvmAllocArrayByClass";
      let addr = Cpu.reg cpu 0 in
      match Heap.find_by_addr d.d_vm.Vm.heap addr with
      | Some o -> Cpu.set_reg cpu 0 (Indirect_ref.add d.d_irefs ~obj_id:o.Heap.id)
      | None -> raise (Vm.Dvm_error "NewObjectArray: allocation lost"));
  List.iter
    (fun ty ->
      let tn = type_name ty in
      mount
        (Printf.sprintf "New%sArray" tn)
        (fun cpu mem ->
          ignore mem;
          let self = Machine.host_fn_addr d.d_machine (Printf.sprintf "New%sArray" tn) in
          Machine.call_host d.d_machine ~from_:self "dvmAllocPrimitiveArray";
          let addr = Cpu.reg cpu 0 in
          match Heap.find_by_addr d.d_vm.Vm.heap addr with
          | Some o -> Cpu.set_reg cpu 0 (Indirect_ref.add d.d_irefs ~obj_id:o.Heap.id)
          | None -> raise (Vm.Dvm_error "NewArray: allocation lost")))
    [ 'Z'; 'B'; 'C'; 'S'; 'I'; 'J'; 'F'; 'D' ];

  (* --- strings --- *)
  mount "GetStringUTFChars" (fun cpu mem ->
      match string_obj d (arg cpu mem 1) with
      | Some (_id, s) ->
        let buf = A.Native_heap.malloc d.d_nheap (String.length s + 1) in
        Memory.write_cstring mem buf s;
        let is_copy = arg cpu mem 2 in
        if is_copy <> 0 then Memory.write_u8 mem is_copy 1;
        Cpu.set_reg cpu 0 buf
      | None -> Cpu.set_reg cpu 0 0);
  mount "ReleaseStringUTFChars" (fun cpu mem ->
      A.Native_heap.free d.d_nheap (arg cpu mem 2);
      ignore cpu);
  mount "GetStringUTFLength" (fun cpu mem ->
      match string_obj d (arg cpu mem 1) with
      | Some (_, s) -> Cpu.set_reg cpu 0 (String.length s)
      | None -> Cpu.set_reg cpu 0 0);
  mount "GetStringLength" (fun cpu mem ->
      match string_obj d (arg cpu mem 1) with
      | Some (_, s) -> Cpu.set_reg cpu 0 (String.length s)
      | None -> Cpu.set_reg cpu 0 0);
  mount "GetStringChars" (fun cpu mem ->
      match string_obj d (arg cpu mem 1) with
      | Some (_, s) ->
        let buf = A.Native_heap.malloc d.d_nheap ((String.length s + 1) * 2) in
        String.iteri
          (fun i c -> Memory.write_u16 mem (buf + (2 * i)) (Char.code c))
          s;
        Memory.write_u16 mem (buf + (2 * String.length s)) 0;
        Cpu.set_reg cpu 0 buf
      | None -> Cpu.set_reg cpu 0 0);
  mount "ReleaseStringChars" (fun cpu mem ->
      A.Native_heap.free d.d_nheap (arg cpu mem 2);
      ignore cpu);

  (* --- arrays --- *)
  let array_of_iref iref =
    match value_of_iref d iref with
    | Dvalue.Obj id -> (
      match (Heap.get d.d_vm.Vm.heap id).Heap.kind with
      | Heap.Array { elems; _ } -> Some (id, elems)
      | Heap.String _ | Heap.Instance _ -> None)
    | _ -> None
  in
  mount "GetArrayLength" (fun cpu mem ->
      match array_of_iref (arg cpu mem 1) with
      | Some (_, elems) -> Cpu.set_reg cpu 0 (Array.length elems)
      | None -> Cpu.set_reg cpu 0 0);
  mount "GetObjectArrayElement" (fun cpu mem ->
      match array_of_iref (arg cpu mem 1) with
      | Some (_, elems) ->
        let idx = arg cpu mem 2 in
        if idx >= 0 && idx < Array.length elems then
          Cpu.set_reg cpu 0
            (match elems.(idx) with
             | Dvalue.Obj _ as v -> iref_of_value d v
             | _ -> 0)
        else Cpu.set_reg cpu 0 0
      | None -> Cpu.set_reg cpu 0 0);
  mount "SetObjectArrayElement" (fun cpu mem ->
      match array_of_iref (arg cpu mem 1) with
      | Some (_, elems) ->
        let idx = arg cpu mem 2 in
        if idx >= 0 && idx < Array.length elems then
          elems.(idx) <- value_of_iref d (arg cpu mem 3)
      | None -> ());
  List.iter
    (fun ty ->
      let tn = type_name ty in
      let width = match ty with 'J' | 'D' -> 8 | _ -> 4 in
      mount
        (Printf.sprintf "Get%sArrayElements" tn)
        (fun cpu mem ->
          match array_of_iref (arg cpu mem 1) with
          | Some (_, elems) ->
            let buf = A.Native_heap.malloc d.d_nheap (Array.length elems * width) in
            Array.iteri
              (fun i v ->
                Memory.write_u32 mem
                  (buf + (i * width))
                  (Int32.to_int (Dvalue.as_int v) land mask32))
              elems;
            Cpu.set_reg cpu 0 buf
          | None -> Cpu.set_reg cpu 0 0);
      mount
        (Printf.sprintf "Release%sArrayElements" tn)
        (fun cpu mem ->
          let mode = arg cpu mem 3 in
          (match array_of_iref (arg cpu mem 1) with
           | Some (_, elems) when mode <> 2 (* JNI_ABORT *) ->
             let buf = arg cpu mem 2 in
             Array.iteri
               (fun i _ ->
                 elems.(i) <-
                   Dvalue.Int (Int32.of_int (Memory.read_u32 mem (buf + (i * width)))))
               elems
           | Some _ | None -> ());
          A.Native_heap.free d.d_nheap (arg cpu mem 2)))
    [ 'Z'; 'B'; 'C'; 'S'; 'I'; 'J'; 'F'; 'D' ];

  (* --- array/string regions --- *)
  List.iter
    (fun ty ->
      let tn = type_name ty in
      let width = match ty with 'J' | 'D' -> 8 | _ -> 4 in
      mount
        (Printf.sprintf "Get%sArrayRegion" tn)
        (fun cpu mem ->
          match array_of_iref (arg cpu mem 1) with
          | Some (_, elems) ->
            let start = arg cpu mem 2
            and len = arg cpu mem 3
            and buf = arg cpu mem 4 in
            for i = 0 to len - 1 do
              if start + i >= 0 && start + i < Array.length elems then
                Memory.write_u32 mem
                  (buf + (i * width))
                  (Int32.to_int (Dvalue.as_int elems.(start + i)) land mask32)
            done
          | None -> ());
      mount
        (Printf.sprintf "Set%sArrayRegion" tn)
        (fun cpu mem ->
          match array_of_iref (arg cpu mem 1) with
          | Some (_, elems) ->
            let start = arg cpu mem 2
            and len = arg cpu mem 3
            and buf = arg cpu mem 4 in
            for i = 0 to len - 1 do
              if start + i >= 0 && start + i < Array.length elems then
                elems.(start + i) <-
                  Dvalue.Int (Int32.of_int (Memory.read_u32 mem (buf + (i * width))))
            done
          | None -> ()))
    [ 'Z'; 'B'; 'C'; 'S'; 'I'; 'J'; 'F'; 'D' ];
  mount "GetStringUTFRegion" (fun cpu mem ->
      match string_obj d (arg cpu mem 1) with
      | Some (_, s) ->
        let start = arg cpu mem 2 and len = arg cpu mem 3 and buf = arg cpu mem 4 in
        let start = max 0 start in
        let len = min len (String.length s - start) in
        if len > 0 then Memory.write_string mem buf (String.sub s start len);
        Memory.write_u8 mem (buf + max 0 len) 0
      | None -> ());
  mount "GetStringRegion" (fun cpu mem ->
      match string_obj d (arg cpu mem 1) with
      | Some (_, s) ->
        let start = arg cpu mem 2 and len = arg cpu mem 3 and buf = arg cpu mem 4 in
        for i = 0 to len - 1 do
          if start + i < String.length s then
            Memory.write_u16 mem (buf + (2 * i)) (Char.code s.[start + i])
        done
      | None -> ());

  (* --- Table IV: field access --- *)
  let find_field cpu mem =
    let fid = arg cpu mem 2 in
    match Hashtbl.find_opt d.field_handles fid with
    | Some f -> f
    | None -> raise (Vm.Dvm_error (Printf.sprintf "bad jfieldID 0x%x" fid))
  in
  let get_field cpu mem =
    let cls, fld, static = find_field cpu mem in
    if static then
      let cell = Vm.static_ref d.d_vm cls fld in
      fst !cell
    else
      match value_of_iref d (arg cpu mem 1) with
      | Dvalue.Obj id -> (
        match (Heap.get d.d_vm.Vm.heap id).Heap.kind with
        | Heap.Instance { cls = real_cls; values; _ } ->
          values.(Vm.field_index d.d_vm real_cls fld)
        | Heap.String _ | Heap.Array _ -> Dvalue.zero)
      | _ -> Dvalue.zero
  in
  let set_field cpu mem value =
    let cls, fld, static = find_field cpu mem in
    if static then begin
      let cell = Vm.static_ref d.d_vm cls fld in
      cell := (value, snd !cell)
    end
    else
      match value_of_iref d (arg cpu mem 1) with
      | Dvalue.Obj id -> (
        match (Heap.get d.d_vm.Vm.heap id).Heap.kind with
        | Heap.Instance { cls = real_cls; values; _ } ->
          values.(Vm.field_index d.d_vm real_cls fld) <- value
        | Heap.String _ | Heap.Array _ -> ())
      | _ -> ()
  in
  List.iter
    (fun (prefix, _static) ->
      List.iter
        (fun ty ->
          let tn = type_name ty in
          mount
            (Printf.sprintf "Get%s%sField" prefix tn)
            (fun cpu mem ->
              let v = get_field cpu mem in
              match ty with
              | 'L' ->
                Cpu.set_reg cpu 0
                  (match v with Dvalue.Null -> 0 | _ -> iref_of_value d v)
              | _ -> Cpu.set_reg cpu 0 (Int32.to_int (Dvalue.as_int v) land mask32));
          mount
            (Printf.sprintf "Set%s%sField" prefix tn)
            (fun cpu mem ->
              let raw = arg cpu mem 3 in
              let v =
                match ty with
                | 'L' -> value_of_iref d raw
                | _ -> Dvalue.Int (Int32.of_int raw)
              in
              set_field cpu mem v))
        [ 'L'; 'Z'; 'B'; 'C'; 'S'; 'I'; 'J'; 'F'; 'D' ])
    [ ("", false); ("Static", true) ];

  (* --- exceptions --- *)
  mount "ThrowNew" (fun cpu mem ->
      let self = Machine.host_fn_addr d.d_machine "ThrowNew" in
      (* initException reads r1 = jclass, r2 = message char* — already set *)
      let msg_addr = arg cpu mem 2 in
      Machine.call_host d.d_machine ~from_:self "initException";
      let exn_addr = Cpu.reg cpu 0 in
      (match Heap.find_by_addr d.d_vm.Vm.heap exn_addr with
       | Some o ->
         let taint =
           query_taint d (Loc_mem (msg_addr, String.length (cstring d msg_addr) + 1))
         in
         o.Heap.taint <- Taint.union o.Heap.taint taint;
         (* propagate onto the message string object too *)
         (match o.Heap.kind with
          | Heap.Instance { values; taints; _ } ->
            (match values.(0) with
             | Dvalue.Obj sid ->
               (Heap.get d.d_vm.Vm.heap sid).Heap.taint <- taint
             | _ -> ());
            taints.(0) <- Taint.union taints.(0) taint
          | Heap.String _ | Heap.Array _ -> ());
         d.pending_throw <- Some (Dvalue.Obj o.Heap.id, taint)
       | None -> ());
      Cpu.set_reg cpu 0 0);
  mount "Throw" (fun cpu mem ->
      let iref = arg cpu mem 1 in
      let v = value_of_iref d iref in
      d.pending_throw <- Some (v, query_taint d (Loc_iref iref));
      Cpu.set_reg cpu 0 0);
  mount "ExceptionOccurred" (fun cpu _mem ->
      match d.pending_throw with
      | Some (v, _) ->
        Cpu.set_reg cpu 0 (match v with Dvalue.Null -> 0 | _ -> iref_of_value d v)
      | None -> Cpu.set_reg cpu 0 0);
  mount "ExceptionClear" (fun _cpu _mem -> d.pending_throw <- None);

  (* --- reference management --- *)
  mount "RegisterNatives" (fun cpu mem ->
      (* (env, jclass, JNINativeMethod* {name, sig, fnPtr} x n, n) *)
      match class_of_handle d (arg cpu mem 1) with
      | None -> Cpu.set_reg cpu 0 (0xFFFFFFFF (* JNI_ERR *))
      | Some cls ->
        let table = arg cpu mem 2 and n = arg cpu mem 3 in
        for i = 0 to n - 1 do
          let entry = table + (12 * i) in
          let name = Memory.read_cstring mem (Memory.read_u32 mem entry) in
          let fn_ptr = Memory.read_u32 mem (entry + 8) in
          Hashtbl.replace d.registered_natives (cls, name) fn_ptr
        done;
        Cpu.set_reg cpu 0 0);
  mount "UnregisterNatives" (fun cpu mem ->
      (match class_of_handle d (arg cpu mem 1) with
       | Some cls ->
         Hashtbl.iter
           (fun (c, m) _ -> if c = cls then Hashtbl.remove d.registered_natives (c, m))
           (Hashtbl.copy d.registered_natives)
       | None -> ());
      Cpu.set_reg cpu 0 0);
  mount "NewGlobalRef" (fun cpu mem -> Cpu.set_reg cpu 0 (arg cpu mem 1));
  mount "NewLocalRef" (fun cpu mem -> Cpu.set_reg cpu 0 (arg cpu mem 1));
  mount "DeleteGlobalRef" (fun cpu mem ->
      Indirect_ref.delete d.d_irefs (arg cpu mem 1);
      ignore cpu);
  mount "DeleteLocalRef" (fun cpu mem ->
      Indirect_ref.delete d.d_irefs (arg cpu mem 1);
      ignore cpu)

(* ---------------- libc / libm mounting ---------------- *)

let install_system_libs d =
  let next = ref (Layout.libc_base + 0x100) in
  List.iter
    (fun (name, run) ->
      let addr = !next in
      next := addr + 0x40;
      ignore (Machine.mount_host_fn d.d_machine ~lib:"libc.so" ~name ~addr run))
    (A.Libc_model.functions d.d_libc);
  let next = ref (Layout.libm_base + 0x100) in
  List.iter
    (fun (name, run) ->
      let addr = !next in
      next := addr + 0x40;
      ignore (Machine.mount_host_fn d.d_machine ~lib:"libm.so" ~name ~addr run))
    A.Libm_model.functions

(* ---------------- construction ---------------- *)

let install_system_class d =
  let sys = "Ljava/lang/System;" in
  Vm.define_class d.d_vm
    (Jbuilder.class_ ~name:sys ~super:"Ljava/lang/Object;"
       [ Jbuilder.intrinsic_method ~cls:sys ~name:"loadLibrary" ~shorty:"VL"
           "System.loadLibrary";
         Jbuilder.intrinsic_method ~cls:sys ~name:"load" ~shorty:"VL" "System.load" ]);
  let loader vm (args : Vm.tval array) =
    let name = Vm.string_of_value vm (fst args.(0)) in
    (* System.load takes a path; strip directories and the lib/so fix *)
    let base = Filename.basename name in
    let base =
      if String.length base > 3 && String.sub base 0 3 = "lib" then
        String.sub base 3 (String.length base - 3)
      else base
    in
    let base = Filename.remove_extension base in
    (match
       ( Hashtbl.mem d.available_libs name,
         Hashtbl.mem d.available_libs base )
     with
     | true, _ -> load_library d name
     | _, true -> load_library d base
     | false, false ->
       raise (Vm.Dvm_error (Printf.sprintf "UnsatisfiedLinkError: %s" name)));
    (Dvalue.zero, Taint.clear)
  in
  Vm.register_intrinsic d.d_vm "System.loadLibrary" loader;
  Vm.register_intrinsic d.d_vm "System.load" loader

let create ?(profile = A.Device_profile.default) () =
  let vm = Vm.create () in
  let machine = Machine.create () in
  let fs = A.Filesystem.create () in
  let net = A.Network.create () in
  let nheap = A.Native_heap.create () in
  let monitor = A.Sink_monitor.create () in
  let d =
    { d_vm = vm;
      d_machine = machine;
      d_fs = fs;
      d_net = net;
      d_nheap = nheap;
      d_monitor = monitor;
      d_irefs = Indirect_ref.create ();
      d_profile = profile;
      d_libc = A.Libc_model.create_ctx fs net nheap;
      available_libs = Hashtbl.create 8;
      loaded_libs = Hashtbl.create 8;
      symbols = Hashtbl.create 64;
      registered_natives = Hashtbl.create 8;
      dl_handles = Hashtbl.create 8;
      next_dl_handle = 0x60000001;
      class_handles = Hashtbl.create 32;
      class_handle_of = Hashtbl.create 32;
      next_class_handle = 1;
      method_handles = Hashtbl.create 32;
      next_method_handle = 1;
      field_handles = Hashtbl.create 32;
      next_field_handle = 1;
      cur_call = None;
      bridge_result = (Dvalue.zero, Taint.clear);
      pending_interp = None;
      pending_throw = None;
      ret_policy = ref (fun _ ~r0:_ ~r1:_ -> Taint.clear);
      taint_source = ref (fun _ -> Taint.clear);
      d_slot_pool = Arg_pool.create (0, Taint.clear);
      d_arg_pool = Arg_pool.create (Dvalue.zero, Taint.clear);
      d_obs = Ndroid_obs.Ring.disabled;
      lib_summaries = Hashtbl.create 8;
      use_summaries = false;
      summary_taint = (fun _ _ -> ());
      summaries_applied = 0;
      summaries_rejected = 0 }
  in
  (* runtime writes into a loaded image invalidate its summaries *)
  Memory.on_code_write (Machine.mem machine) (fun addr ->
      Hashtbl.iter
        (fun _ l -> if Summary.owns l addr then Summary.mark_dirty l)
        d.lib_summaries);
  A.Framework.install vm;
  A.Sources.install vm profile;
  A.Sinks.install vm net fs monitor;
  install_system_class d;
  install_jni d;
  install_system_libs d;
  vm.Vm.native_dispatch <- Some (fun vm jm args -> native_dispatch d vm jm args);
  A.Libc_model.set_dl d.d_libc ~dl_open:(dl_open d) ~dl_sym:(dl_sym d);
  d

let install_classes d classes = List.iter (Vm.define_class d.d_vm) classes

let field_cell d ~obj_iref ~fid =
  match Hashtbl.find_opt d.field_handles fid with
  | None -> None
  | Some (cls, fld, true) -> Some (`Static (Vm.static_ref d.d_vm cls fld))
  | Some (_, fld, false) -> (
    match value_of_iref d obj_iref with
    | Dvalue.Obj id -> (
      match (Heap.get d.d_vm.Vm.heap id).Heap.kind with
      | Heap.Instance { cls = real_cls; taints; _ } ->
        Some (`Instance (taints, Vm.field_index d.d_vm real_cls fld))
      | Heap.String _ | Heap.Array _ -> None)
    | _ -> None)

let field_taint d ~obj_iref ~fid =
  match field_cell d ~obj_iref ~fid with
  | Some (`Static cell) -> snd !cell
  | Some (`Instance (taints, idx)) -> taints.(idx)
  | None -> Taint.clear

let add_field_taint d ~obj_iref ~fid taint =
  match field_cell d ~obj_iref ~fid with
  | Some (`Static cell) ->
    let v, t = !cell in
    cell := (v, Taint.union t taint)
  | Some (`Instance (taints, idx)) -> taints.(idx) <- Taint.union taints.(idx) taint
  | None -> ()

let method_of_handle d h = Hashtbl.find_opt d.method_handles h

let object_taint d ~iref =
  match Indirect_ref.resolve d.d_irefs iref with
  | Some id -> (
    match Heap.get d.d_vm.Vm.heap id with
    | o -> o.Heap.taint
    | exception Not_found -> Taint.clear)
  | None -> Taint.clear

let add_object_taint d ~iref taint =
  match Indirect_ref.resolve d.d_irefs iref with
  | Some id -> (
    match Heap.get d.d_vm.Vm.heap id with
    | o -> o.Heap.taint <- Taint.union o.Heap.taint taint
    | exception Not_found -> ())
  | None -> ()

let find_object_by_addr d addr =
  match Heap.find_by_addr d.d_vm.Vm.heap addr with
  | Some o -> Some o.Heap.id
  | None -> None

let object_addr d ~iref =
  match Indirect_ref.resolve d.d_irefs iref with
  | Some id -> (
    match Heap.get d.d_vm.Vm.heap id with
    | o -> Some o.Heap.addr
    | exception Not_found -> None)
  | None -> None

let array_length d ~iref =
  match Indirect_ref.resolve d.d_irefs iref with
  | Some id -> (
    match (Heap.get d.d_vm.Vm.heap id).Heap.kind with
    | Heap.Array { elems; _ } -> Some (Array.length elems)
    | Heap.String s -> Some (String.length s)
    | Heap.Instance _ -> None
    | exception Not_found -> None)
  | None -> None

let run d cls name args = Interp.invoke_by_name d.d_vm cls name args

let gc d =
  let o = d.d_obs in
  Ndroid_obs.Ring.emit_gc_begin o;
  Heap.compact d.d_vm.Vm.heap;
  Ndroid_obs.Ring.emit_gc_end o;
  if o.Ndroid_obs.Ring.on then
    Ndroid_obs.Metrics.incr
      (Ndroid_obs.Metrics.counter (Ndroid_obs.Ring.metrics o) "gcs")
