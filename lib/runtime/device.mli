(** The simulated Android device: one Dalvik VM, one ARM machine, the JNI
    boundary between them, and the framework (sources, sinks, libc, libm).

    Architecturally this is the box NDroid instruments (paper, Fig. 4): the
    app's Java code runs in {!Ndroid_dalvik.Interp}, its native libraries
    run on {!Ndroid_emulator.Machine}, and every crossing goes through the
    call bridge here — [dvmCallJNIMethod] downward, [Call*Method*] →
    [dvmCallMethod*] → [dvmInterpret] upward — with events emitted at each
    hop so the analyses can hook them by address, exactly as NDroid hooks
    the real functions by their offsets in libdvm.so (Sec. V-G).

    Analyses plug in through two policy points, both cleared by default
    (the vanilla configuration):
    - {!val-jni_return_policy}: what taint the JNI call bridge gives a native
      method's return value (TaintDroid: union of parameter taints);
    - {!val-native_taint_source}: what taint attaches to data entering Java
      from the native context (NDroid: its taint map / shadow registers;
      TaintDroid: none — which is precisely why it misses cases 1', 3
      and 4). *)

module Vm = Ndroid_dalvik.Vm
module Classes = Ndroid_dalvik.Classes
module Machine = Ndroid_emulator.Machine
module Taint = Ndroid_taint.Taint

(** Where a piece of native data lives, for taint queries. *)
type taint_loc =
  | Loc_mem of int * int  (** guest address, length *)
  | Loc_reg of int  (** CPU register index *)
  | Loc_iref of int  (** indirect reference to a Java object *)

(** One Java→native crossing, as captured when [dvmCallJNIMethod] is
    hooked: the paper's SourcePolicy is built from exactly this record
    (method address, per-slot taints, stack argument count, shorty,
    access flag — Listing 1). *)
type jni_call = {
  jc_method : Classes.method_def;
  jc_addr : int;  (** first instruction of the native method (even address) *)
  jc_entry : int;  (** call target: [jc_addr], plus the Thumb bit if set *)
  jc_args : Vm.tval array;  (** Java-side argument values and taints *)
  jc_slots : (int * Taint.t) array;
      (** marshaled AAPCS slots: slot 0..3 → r0..r3, the rest on stack *)
}

type t

val create : ?profile:Ndroid_android.Device_profile.t -> unit -> t
(** Boot a device: fresh VM with framework + sources + sinks installed,
    fresh machine with libc/libm/libdvm mounted. *)

(** {1 Components} *)

val vm : t -> Vm.t
val machine : t -> Machine.t
val fs : t -> Ndroid_android.Filesystem.t
val net : t -> Ndroid_android.Network.t
val native_heap : t -> Ndroid_android.Native_heap.t
val monitor : t -> Ndroid_android.Sink_monitor.t
val irefs : t -> Ndroid_jni.Indirect_ref.t
val profile : t -> Ndroid_android.Device_profile.t
val libc_ctx : t -> Ndroid_android.Libc_model.ctx

(** {1 Observability} *)

val obs : t -> Ndroid_obs.Ring.t
(** The device's observability hub; {!Ndroid_obs.Ring.disabled} until
    {!set_obs}. *)

val set_obs : t -> Ndroid_obs.Ring.t -> unit
(** Observe the whole device through [ring]: JNI crossings and GC from
    here, method spans from the Dalvik interpreter (which shares the
    hub), and — when the ring's [tracing] gate is up — native
    instructions and host boundaries from the machine.  Call once per
    device. *)

(** {1 App loading} *)

val install_classes : t -> Classes.class_def list -> unit

val provide_library : t -> string -> Ndroid_arm.Asm.program -> unit
(** Make a native library available under a name; loaded into guest memory
    when Java calls [System.loadLibrary(name)] — or immediately via
    {!load_library}. *)

val load_library : t -> string -> unit
(** Load a provided library now (maps it and registers its symbols).
    @raise Not_found if never provided. *)

val native_symbol : t -> string -> int
(** Resolved guest address of a native symbol (with the Thumb bit for Thumb
    libraries). @raise Not_found until the defining library is loaded. *)

(** {1 Running the app} *)

val run : t -> string -> string -> Vm.tval array -> Vm.tval
(** [run device cls method args] invokes a Java method, catching nothing:
    [Vm.Java_throw] escapes to the caller as on a real device crash. *)

(** {1 Analysis plug points} *)

val set_use_summaries : t -> bool -> unit
(** Let the JNI bridge apply cached native taint summaries instead of
    emulating exact function bodies (off by default: the emulated path is
    the reference semantics). *)

val use_summaries : t -> bool

val set_summary_taint : t -> (int -> (int * int) array -> unit) -> unit
(** Install the taint side of summary application: called with the entry
    address and the summary's (rd, entry-dependence mask) pairs before the
    value replay.  The attach layer implements source-policy mimicry plus
    {!Ndroid_summary.Summary.apply_masks} here; without an attached
    analysis it stays a no-op. *)

val summaries_applied : t -> int
(** JNI calls answered from a summary instead of emulation. *)

val summaries_rejected : t -> int
(** JNI calls that wanted the summary path but fell back to emulation
    (inexact body, dirty library, or stack-borne arguments). *)

val jni_return_policy : t -> (jni_call -> r0:int -> r1:int -> Taint.t) ref
val native_taint_source : t -> (taint_loc -> Taint.t) ref
val current_jni_call : t -> jni_call option
(** The crossing being bridged right now (set around [dvmCallJNIMethod]). *)

val pending_interp_args : t -> (Vm.tval array * Classes.method_def) option
(** While a native→Java call is being bridged: the frame about to be
    interpreted, visible to the [dvmInterpret] hook (Fig. 9's log). *)

val jni_env_ptr : int
(** The JNIEnv* constant passed as the first native argument. *)

(** {1 Handle resolution for hook engines} *)

val field_taint : t -> obj_iref:int -> fid:int -> Taint.t
(** Taint of the field a [Get*Field] call is about to read — NDroid's
    field-access hook queries this "after executing Get*Field functions"
    (paper, Sec. V-B / Table IV).  [obj_iref] is ignored for static
    fields. *)

val add_field_taint : t -> obj_iref:int -> fid:int -> Taint.t -> unit
(** Union taint onto the field a [Set*Field] call targets. *)

val method_of_handle : t -> int -> Classes.method_def option
(** Resolve a jmethodID handle. *)

val object_taint : t -> iref:int -> Taint.t
(** TaintDroid-format taint of the object behind an indirect reference
    (the array/string/object tag in the heap). *)

val add_object_taint : t -> iref:int -> Taint.t -> unit
(** Union taint onto the object behind an indirect reference.  Keyed by
    indirect reference, so it survives GC moves (paper, Sec. V-B). *)

val find_object_by_addr : t -> int -> int option
(** Heap id for a real object address ([dvmCreateStringFromCstr]'s return
    value in Fig. 6), or [None]. *)

val object_addr : t -> iref:int -> int option
(** Current direct pointer of the object behind an indirect reference —
    the "realStringAddr" NDroid logs (Fig. 6).  Changes on {!gc}. *)

val array_length : t -> iref:int -> int option
(** Element count when the reference is an array (string length for
    strings), for the [Get*ArrayElements] hooks. *)

(** {1 GC} *)

val gc : t -> unit
(** Compact the Java heap: every direct pointer changes, the indirect
    reference table stays valid (paper, Sec. II-A). *)
