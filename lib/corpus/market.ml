open App_model

type params = { total : int; seed : int; type1_permille : int option }

let full_total = 227_911
let default_params = { total = full_total; seed = 2014; type1_permille = None }
let scaled n = { total = max 64 n; seed = 2014; type1_permille = None }

(* splitmix64-style deterministic hash: every attribute of app [i] is a pure
   function of (seed, i, salt). *)
let mix seed i salt =
  let z = ref ((seed * 0x9E3779B9) lxor (i * 0x85EBCA6B) lxor (salt * 0xC2B2AE35)) in
  z := (!z lxor (!z lsr 15)) * 0x2C1B3C6D land max_int;
  z := (!z lxor (!z lsr 12)) * 0x297A2D39 land max_int;
  !z lxor (!z lsr 15)

let rand params i salt range = if range <= 0 then 0 else mix params.seed i salt mod range

(* Exact sub-population sizes, scaled from the paper's counts. *)
type quotas = {
  q_type1 : int;
  q_type1_no_libs : int;
  q_type1_no_libs_admob : int;
  q_type2 : int;
  q_type2_loadable : int;
  q_type3 : int;
  q_type3_game : int;
}

let quotas params =
  let scale n =
    if params.total = full_total then n
    else max 1 (n * params.total / full_total)
  in
  let q_type1 =
    match params.type1_permille with
    | None -> scale 37_506
    | Some pm -> max 1 (params.total * pm / 1000)
  in
  let q_type1_no_libs =
    (* without an override the paper's exact count; otherwise the paper's
       proportion of the overridden Type-I population *)
    match params.type1_permille with
    | None -> min q_type1 (scale 4_034)
    | Some _ -> max 1 (q_type1 * 4_034 / 37_506)
  in
  { q_type1;
    q_type1_no_libs;
    q_type1_no_libs_admob = q_type1_no_libs * 481 / 1000;
    q_type2 = scale 1_738;
    q_type2_loadable = scale 394;
    q_type3 = (if params.total = full_total then 16 else max 1 (scale 16));
    q_type3_game = (if params.total = full_total then 11 else max 1 (scale 16) * 11 / 16)
  }

(* Fig. 2's Type-I category distribution in per-mille. *)
let type1_category_dist =
  [ (Game, 420); (Music_and_audio, 50); (Personalization, 50);
    (Communication, 40); (Entertainment, 40); (Tools, 40); (Media_video, 30);
    (Photography, 30); (Productivity, 30); (Social, 30); (Sports, 30);
    (Lifestyle, 30); (Books, 20); (Business, 20); (Education, 20);
    (Finance, 20); (Health, 20); (News, 20); (Shopping, 20); (Travel, 20);
    (Weather, 20) ]

let pick_weighted dist roll =
  let rec go acc = function
    | [] -> Game
    | (cat, w) :: rest -> if roll < acc + w then cat else go (acc + w) rest
  in
  go 0 dist

let uniform_category params i =
  List.nth all_categories (rand params i 11 (List.length all_categories))

let type1_category params i = pick_weighted type1_category_dist (rand params i 12 1000)

(* Libraries typical of a category, plus the compatibility bundles. *)
let libs_for params i category =
  let candidates =
    List.filter
      (fun (_, c) -> match c with None -> true | Some c -> c = category)
      popular_libs
  in
  let n = 1 + rand params i 13 3 in
  List.init n (fun k ->
      let name, _ = List.nth candidates (rand params i (14 + k) (List.length candidates)) in
      { lib_name = name; abi = Armeabi })

let package params i =
  Printf.sprintf "com.market.a%06d.%c%c" i
    (Char.chr (Char.code 'a' + rand params i 1 26))
    (Char.chr (Char.code 'a' + rand params i 2 26))

let native_classes params i n =
  List.init n (fun k ->
      Printf.sprintf "Lcom/market/a%06d/Native%d;" i (k + rand params i (20 + k) 7))

(* plausible framework traffic every dex contains *)
let common_method_refs params i =
  let pool =
    [ "Landroid/app/Activity;->onCreate(Landroid/os/Bundle;)V";
      "Landroid/util/Log;->d(Ljava/lang/String;Ljava/lang/String;)I";
      "Ljava/lang/StringBuilder;->append(Ljava/lang/String;)Ljava/lang/StringBuilder;";
      "Landroid/content/Context;->getSystemService(Ljava/lang/String;)Ljava/lang/Object;";
      "Ljava/util/List;->add(Ljava/lang/Object;)Z";
      "Landroid/view/View;->setOnClickListener(Landroid/view/View$OnClickListener;)V" ]
  in
  List.filteri (fun k _ -> rand params i (30 + k) 100 < 70) pool

let loader_refs params i =
  (* Type I / loadable dexes carry one of the two load invocations *)
  let sig_ =
    List.nth load_invocation_sigs (rand params i 31 (List.length load_invocation_sigs))
  in
  sig_ :: common_method_refs params i

(* A deterministic sliver of the market actually leaks: its dex references a
   privacy source and then a sink, with the materialized bodies threading the
   source's result to the sink's argument (Apk.main_class_of_dex).  These are
   the apps a static triage pass must NOT prune. *)
let source_sigs =
  [ "Landroid/telephony/TelephonyManager;->getDeviceId()Ljava/lang/String;";
    "Landroid/telephony/TelephonyManager;->getSubscriberId()Ljava/lang/String;";
    "Landroid/provider/ContactsProvider;->getContactEmail(I)Ljava/lang/String;";
    "Landroid/provider/SmsProvider;->getSmsBody(I)Ljava/lang/String;" ]

let sink_sigs =
  [ "Ljava/net/Socket;->send(Ljava/lang/String;Ljava/lang/String;)V";
    "Landroid/telephony/SmsManager;->sendTextMessage(Ljava/lang/String;Ljava/lang/String;)V";
    "Landroid/util/Log;->i(Ljava/lang/String;Ljava/lang/String;)I" ]

let leak_refs params i =
  [ List.nth source_sigs (rand params i 34 (List.length source_sigs));
    List.nth sink_sigs (rand params i 35 (List.length sink_sigs)) ]

(* ~12% of Type I apps and ~3% of plain-Java apps leak *)
let type1_leaky params i = rand params i 33 1000 < 120
let java_leaky params i = rand params i 33 1000 < 30

(* ground truth, rederivable from the artifacts alone *)
let app_is_leaky (app : App_model.t) =
  match app.main_dex with
  | None -> false
  | Some d ->
    List.exists (fun r -> List.mem r source_sigs) d.method_refs
    && List.exists (fun r -> List.mem r sink_sigs) d.method_refs

let app params i =
  let q = quotas params in
  (* Band layout by id (the stream is a deterministic permutation of bands:
     ids are already arbitrary, so banding by id is as good as shuffling). *)
  let t1_end = q.q_type1 in
  let t2_end = t1_end + q.q_type2 in
  let t3_end = t2_end + q.q_type3 in
  let downloads = 1000 + (rand params i 3 1_000_000) in
  if i < t1_end then begin
    (* ---- Type I ---- *)
    let category = type1_category params i in
    let without_libs = i < q.q_type1_no_libs in
    let admob = without_libs && i < q.q_type1_no_libs_admob in
    let decl =
      if admob then admob_classes
      else native_classes params i (1 + rand params i 21 3)
    in
    let refs =
      loader_refs params i
      @ (if type1_leaky params i then leak_refs params i else [])
    in
    { app_id = i;
      package = package params i;
      category;
      main_dex = Some { method_refs = refs; native_decl_classes = decl };
      embedded_dexes = [];
      libs = (if without_libs then [] else libs_for params i category);
      downloads }
  end
  else if i < t2_end then begin
    (* ---- Type II: libraries present, no load call in the main dex ---- *)
    let category = uniform_category params i in
    let loadable = i - t1_end < q.q_type2_loadable in
    let embedded =
      if loadable then
        [ { method_refs = loader_refs params i;
            native_decl_classes = native_classes params i 1 } ]
      else []
    in
    (* some Type II apps only bundle foreign-ABI leftovers *)
    let libs =
      let base = libs_for params i category in
      if (not loadable) && rand params i 22 100 < 40 then
        List.map (fun l -> { l with abi = X86 }) base
      else base
    in
    { app_id = i;
      package = package params i;
      category;
      main_dex = Some { method_refs = common_method_refs params i;
                        native_decl_classes = [] };
      embedded_dexes = embedded;
      libs;
      downloads }
  end
  else if i < t3_end then begin
    (* ---- Type III: pure native ---- *)
    let in_band = i - t2_end in
    let category = if in_band < q.q_type3_game then Game else Entertainment in
    { app_id = i;
      package = package params i;
      category;
      main_dex = None;
      embedded_dexes = [];
      libs =
        { lib_name = "libmain.so"; abi = Armeabi }
        :: libs_for params i category;
      downloads }
  end
  else begin
    (* ---- plain Java app ---- *)
    let refs =
      common_method_refs params i
      @ (if java_leaky params i then leak_refs params i else [])
    in
    { app_id = i;
      package = package params i;
      category = uniform_category params i;
      main_dex = Some { method_refs = refs; native_decl_classes = [] };
      embedded_dexes = [];
      libs = [];
      downloads }
  end

let generate params = Seq.init params.total (fun i -> app params i)

type preset = {
  p_name : string;
  p_when : string;
  p_source : string;
  p_total : int;
  p_type1_permille : int;
}

let presets =
  [ { p_name = "play-2011a"; p_when = "May-Jun 2011";
      p_source = "Zhou et al. [2]"; p_total = 204_040; p_type1_permille = 45 };
    { p_name = "play-2011b"; p_when = "Sep-Oct 2011";
      p_source = "Zhou et al. [3]"; p_total = 118_318; p_type1_permille = 94 };
    { p_name = "play-2012-13"; p_when = "Jun 2012 - Jun 2013";
      p_source = "this paper"; p_total = 227_911; p_type1_permille = 165 };
    { p_name = "asian-3rd-party"; p_when = "2013";
      p_source = "Spreitzenbarth et al. [4]"; p_total = 30_000;
      p_type1_permille = 240 } ]

let of_preset ?(seed = 2014) p =
  if p.p_name = "play-2012-13" then { total = p.p_total; seed; type1_permille = None }
  else { total = p.p_total; seed; type1_permille = Some p.p_type1_permille }
