(** The Section III classifier.

    "We pick out three types of apps that may use JNI, including (I) apps
    that invoke System.load() or System.loadLibrary() to load native
    libraries; (II) apps that contain native libraries without calling
    System.load() or System.loadLibrary(); (III) apps written in pure
    native code."

    Classification looks only at app artifacts — never at how the generator
    happened to construct the app. *)

type classification =
  | Type_I
  | Type_II of { loadable_via_embedded_dex : bool }
      (** [loadable_via_embedded_dex]: a compressed dex inside the APK
          contains the load invocation, so "once these apps dynamically
          load these dex files, they can load the native libraries" *)
  | Type_III
  | Not_native

val classify : App_model.t -> classification
val classification_name : classification -> string

val classify_dex_bytes :
  main_dex:string option -> embedded_dexes:string list -> has_libs:bool ->
  classification
(** Same verdict computed from binary APK entries ([Dexfile] images) instead
    of the symbolic app model; shares the classification core with
    {!classify} so the two cannot drift.
    @raise Ndroid_dalvik.Dexfile.Bad_dex on a malformed image. *)

val dex_bytes_call_load : string -> bool
(** Does this binary dex image invoke [System.loadLibrary]/[System.load]? *)

val uses_native_libraries : App_model.t -> bool
(** The headline "16.46% of them use native libraries" population:
    Type I. *)
