(** Synthetic market generator.

    The paper crawled 227,911 apps from Google Play (Jun. 2012 - Jun. 2013)
    and reports exact sub-population sizes (Sec. III).  This generator
    produces a deterministic synthetic market with those sizes by
    construction — the {e classifier} ({!Classifier}) then re-derives every
    statistic from the generated artifacts alone, so the study pipeline is
    real even though the corpus is synthetic.

    Population at full scale:
    - 37,506 Type I apps (invoke [System.load*]), of which 4,034 bundle no
      libraries — 48.1% of those carrying the eight AdMob plugin classes;
    - 1,738 Type II apps (bundle libraries, never call load), of which 394
      carry embedded dex files that do call load;
    - 16 Type III pure-native apps (11 games, 5 entertainment);
    - the rest use no native code at all.

    Type I category proportions follow Fig. 2 (Game 42%, Music & Audio 5%,
    Personalization 5%, …). *)

type params = {
  total : int;
  seed : int;
  type1_permille : int option;
      (** override the Type-I share (the paper corpus uses the exact
          37,506/227,911); sub-populations scale proportionally *)
}

val default_params : params
(** Full scale: [total = 227_911], [seed = 2014]. *)

val scaled : int -> params
(** Same proportions at a smaller population. *)

val generate : params -> App_model.t Seq.t
(** Lazy, deterministic stream of apps in id order. *)

val app : params -> int -> App_model.t
(** Generate one app by id (0-based), identical to the stream's element. *)

val source_sigs : string list
val sink_sigs : string list
(** The privacy-source / sink method references the leaky sub-population
    carries (~12% of Type I, ~3% of plain-Java apps).  Materialized bodies
    thread the source's result into the sink's argument, so a static triage
    pass must keep these apps. *)

val app_is_leaky : App_model.t -> bool
(** Ground truth for the triage benchmark, rederived from the app's own
    method references (source AND sink present in the main dex). *)

(** A published measurement of native-code prevalence, for the trend the
    paper's introduction traces: Zhou et al. measured 4.52% (May-Jun 2011)
    then 9.42% (Sep-Oct 2011); this paper measures 16.46% (Jun 2012 -
    Jun 2013); Spreitzenbarth et al. report 24% on Asian third-party
    markets. *)
type preset = {
  p_name : string;
  p_when : string;
  p_source : string;
  p_total : int;
  p_type1_permille : int;  (** Type-I share in 0.1% units *)
}

val presets : preset list
(** The four published data points, oldest first. *)

val of_preset : ?seed:int -> preset -> params
