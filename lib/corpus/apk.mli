(** APK materialization: from the symbolic {!App_model} to real artifacts,
    and classification straight off those artifacts.

    The symbolic corpus scales to the full 227,911 apps; this module closes
    the loop on realism: {!of_app_model} synthesizes an actual binary
    [classes.dex] (whose load calls are genuine [invoke-static
    Ljava/lang/System;->loadLibrary] instructions inside method bodies),
    embedded dex blobs, and [.so] images — and {!classify} re-derives the
    Sec. III verdict by {e parsing those bytes}, exactly the way the
    paper's static scan over downloaded APKs worked.  A property test checks
    the artifact-level verdict agrees with the symbolic classifier on every
    sampled app. *)

type t = {
  apk_package : string;
  entries : (string * string) list;
      (** path → bytes: ["classes.dex"], ["assets/*.dex"],
          ["lib/<abi>/lib*.so"] *)
}

val of_app_model : App_model.t -> t
(** Synthesize the artifacts the model describes. *)

val main_class_of_dex : string -> App_model.dex -> Ndroid_dalvik.Classes.class_def
(** The materialized [L<package>/Main;] class whose static [onCreate]
    performs the dex's method references with a def-use chain from source
    results to sink arguments.  Exposed so a dynamic harness can execute
    the same class the dex image serializes. *)

val native_decl_class : string -> Ndroid_dalvik.Classes.class_def
(** A class declaring one [native] method, as Type-I/II dexes carry. *)

val classify : t -> Classifier.classification
(** Parse the dex images and scan the decoded method bodies for
    [System.loadLibrary]/[System.load] invocations; inspect the lib
    entries.  @raise Ndroid_dalvik.Dexfile.Bad_dex on corrupt images. *)

val dex_calls_load : string -> bool
(** Scan one binary dex image. *)
