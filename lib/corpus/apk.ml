module Dexfile = Ndroid_dalvik.Dexfile
module Classes = Ndroid_dalvik.Classes
module B = Ndroid_dalvik.Bytecode
module Dvalue = Ndroid_dalvik.Dvalue
module Asm = Ndroid_arm.Asm
module Insn = Ndroid_arm.Insn
module Sofile = Ndroid_arm.Sofile

type t = { apk_package : string; entries : (string * string) list }

(* turn a symbolic method-reference signature, e.g.
   "Ljava/lang/System;->loadLibrary(Ljava/lang/String;)V", into an invoke *)
let invoke_of_sig signature regs =
  match String.index_opt signature '-' with
  | Some i when i + 1 < String.length signature && signature.[i + 1] = '>' ->
    let cls = String.sub signature 0 i in
    let rest = String.sub signature (i + 2) (String.length signature - i - 2) in
    let name =
      match String.index_opt rest '(' with
      | Some j -> String.sub rest 0 j
      | None -> rest
    in
    B.Invoke (B.Static, { B.m_class = cls; m_name = name }, regs)
  | _ -> B.Nop

(* does the signature's return type say it produces a value? *)
let sig_returns_value signature =
  match String.rindex_opt signature ')' with
  | Some i -> i + 1 < String.length signature && signature.[i + 1] <> 'V'
  | None -> false

(* parameter descriptors between '(' and ')', collapsed to object/primitive *)
let sig_params signature =
  match (String.index_opt signature '(', String.index_opt signature ')') with
  | Some op, Some cl when op < cl ->
    let rec go i acc =
      if i >= cl then List.rev acc
      else
        match signature.[i] with
        | 'L' -> (
          match String.index_from_opt signature i ';' with
          | Some s when s < cl -> go (s + 1) (`Obj :: acc)
          | _ -> List.rev (`Obj :: acc))
        | '[' -> (
          (* arrays are references whatever the element type *)
          let rec elem j = if j < cl && signature.[j] = '[' then elem (j + 1) else j in
          let j = elem i in
          if j < cl && signature.[j] = 'L' then
            match String.index_from_opt signature j ';' with
            | Some s when s < cl -> go (s + 1) (`Obj :: acc)
            | _ -> List.rev (`Obj :: acc)
          else go (j + 1) (`Obj :: acc))
        | _ -> go (i + 1) (`Int :: acc)
    in
    go (op + 1) []
  | _ -> []

(* a class whose onCreate body performs the dex's method references with
   arity-correct register lists; load calls take the library-name string
   register, primitive parameters take the scratch int register, and the
   *last* object parameter of every other call takes the running
   "last result" register (earlier object parameters get the scratch
   string) — so the materialized bodies carry a genuine def-use chain from
   source results to sink data arguments, not just a bag of call sites *)
let arg_regs signature =
  let params = sig_params signature in
  let n_obj = List.length (List.filter (fun p -> p = `Obj) params) in
  let seen = ref 0 in
  List.map
    (fun p ->
      match p with
      | `Int -> 2
      | `Obj ->
        incr seen;
        if !seen = n_obj then 1 else 3)
    params

let main_class_of_dex package (dex : App_model.dex) =
  let cls = Printf.sprintf "L%s/Main;" (String.map (fun c -> if c = '.' then '/' else c) package) in
  let body =
    [ B.Const_string (0, "native-lib"); B.Const (1, Dvalue.zero);
      B.Const (2, Dvalue.zero); B.Const_string (3, "dst") ]
    @ List.concat_map
        (fun signature ->
          if List.mem signature App_model.load_invocation_sigs then
            [ invoke_of_sig signature [ 0 ] ]
          else if sig_returns_value signature then
            [ invoke_of_sig signature (arg_regs signature); B.Move_result 1 ]
          else [ invoke_of_sig signature (arg_regs signature) ])
        dex.App_model.method_refs
    @ [ B.Return_void ]
  in
  let main =
    { Classes.m_class = cls; m_name = "onCreate"; m_shorty = "V";
      m_static = true; m_registers = 4;
      m_body = Classes.Bytecode (Array.of_list body, []) }
  in
  { Classes.c_name = cls; c_super = Some "Ljava/lang/Object;"; c_fields = [];
    c_methods = [ main ] }

let native_decl_class name =
  { Classes.c_name = name; c_super = Some "Ljava/lang/Object;"; c_fields = [];
    c_methods =
      [ { Classes.m_class = name; m_name = "nativeOp"; m_shorty = "II";
          m_static = true; m_registers = 0; m_body = Classes.Native "nativeOp" } ] }

let dex_image package (dex : App_model.dex) =
  Dexfile.to_string
    (main_class_of_dex package dex
    :: List.map native_decl_class dex.App_model.native_decl_classes)

let so_image () =
  (* a minimal but genuine library: one exported function *)
  Sofile.to_string
    (Asm.assemble ~base:0x4A000000
       [ Asm.Label "JNI_OnLoad";
         Asm.I (Insn.mov 0 (Insn.Imm 4));
         Asm.I Insn.bx_lr ])

let abi_dir = function
  | App_model.Armeabi -> "armeabi"
  | App_model.X86 -> "x86"
  | App_model.Mips -> "mips"

let of_app_model (app : App_model.t) =
  let dex_entries =
    match app.App_model.main_dex with
    | Some dex -> [ ("classes.dex", dex_image app.App_model.package dex) ]
    | None -> []
  in
  let embedded =
    List.mapi
      (fun i dex ->
        (Printf.sprintf "assets/payload%d.dex" i, dex_image app.App_model.package dex))
      app.App_model.embedded_dexes
  in
  let libs =
    List.map
      (fun l ->
        (Printf.sprintf "lib/%s/%s" (abi_dir l.App_model.abi) l.App_model.lib_name,
         so_image ()))
      app.App_model.libs
  in
  { apk_package = app.App_model.package; entries = dex_entries @ embedded @ libs }

(* ---- scanning ---- *)

let dex_calls_load = Classifier.dex_bytes_call_load

let is_dex path =
  String.length path > 4 && String.sub path (String.length path - 4) 4 = ".dex"

let is_lib path = String.length path > 4 && String.sub path 0 4 = "lib/"

let classify apk =
  let main_dex = List.assoc_opt "classes.dex" apk.entries in
  let embedded =
    List.filter_map
      (fun (p, img) -> if p <> "classes.dex" && is_dex p then Some img else None)
      apk.entries
  in
  let has_libs = List.exists (fun (p, _) -> is_lib p) apk.entries in
  Classifier.classify_dex_bytes ~main_dex ~embedded_dexes:embedded ~has_libs
