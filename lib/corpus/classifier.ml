open App_model
module Dexfile = Ndroid_dalvik.Dexfile
module Classes = Ndroid_dalvik.Classes
module B = Ndroid_dalvik.Bytecode

type classification =
  | Type_I
  | Type_II of { loadable_via_embedded_dex : bool }
  | Type_III
  | Not_native

(* the symbolic and binary verdicts share one core over "does the main dex
   call load?" / "does an embedded dex?" / "are libs packaged?" so the two
   entry points cannot drift *)
let classify_shape ~main_calls_load ~embedded_calls_load ~has_libs =
  match main_calls_load with
  | None -> if has_libs then Type_III else Not_native
  | Some true -> Type_I
  | Some false ->
    if has_libs then Type_II { loadable_via_embedded_dex = embedded_calls_load }
    else Not_native

let classify app =
  classify_shape
    ~main_calls_load:(Option.map dex_calls_load app.main_dex)
    ~embedded_calls_load:(List.exists dex_calls_load app.embedded_dexes)
    ~has_libs:(app.libs <> [])

(* ---- binary-dex scanning ---- *)

let insn_is_load_call = function
  | B.Invoke (_, { B.m_class = "Ljava/lang/System;"; m_name }, _) ->
    m_name = "loadLibrary" || m_name = "load"
  | _ -> false

let dex_bytes_call_load image =
  let classes = Dexfile.of_string image in
  List.exists
    (fun (c : Classes.class_def) ->
      List.exists
        (fun (m : Classes.method_def) ->
          match m.Classes.m_body with
          | Classes.Bytecode (code, _) -> Array.exists insn_is_load_call code
          | Classes.Native _ | Classes.Intrinsic _ -> false)
        c.Classes.c_methods)
    classes

let classify_dex_bytes ~main_dex ~embedded_dexes ~has_libs =
  classify_shape
    ~main_calls_load:(Option.map dex_bytes_call_load main_dex)
    ~embedded_calls_load:(List.exists dex_bytes_call_load embedded_dexes)
    ~has_libs

let classification_name = function
  | Type_I -> "Type I"
  | Type_II { loadable_via_embedded_dex = true } -> "Type II (loadable)"
  | Type_II _ -> "Type II"
  | Type_III -> "Type III"
  | Not_native -> "not native"

let uses_native_libraries app =
  match classify app with
  | Type_I -> true
  | Type_II _ | Type_III | Not_native -> false
