(** The whole-system machine: CPU + memory + host-function dispatch + the
    instrumentation event stream.

    This plays QEMU's role in NDroid's architecture (paper, Fig. 4).
    Library functions ([libdvm]'s JNI functions, libc, libm) are {e host
    functions}: OCaml handlers mounted at guest addresses.  A branch that
    lands on one runs the handler and returns — and, like NDroid's
    TCG-insertion hooking (Sec. V-G), emits pre/post events keyed by the
    function's address and name.  Everything else is stepped instruction by
    instruction, with a pre-execution event per instruction so an attached
    tracer sees the machine state the instruction is about to consume. *)

module Cpu = Ndroid_arm.Cpu
module Memory = Ndroid_arm.Memory
module Insn = Ndroid_arm.Insn
module Exec = Ndroid_arm.Exec
module Icache = Ndroid_arm.Icache

type host_fn = { hf_name : string; hf_lib : string; hf_addr : int }

(** [Ev_insn] and [Ev_branch] carry mutable payloads: the trace loop reuses
    one preallocated cell of each, rewriting the fields per emission, so
    per-instruction event delivery allocates nothing.  Listeners must read
    the fields during the callback and never retain the event value. *)
type event =
  | Ev_insn of { mutable addr : int; mutable insn : Insn.t }
      (** emitted {e before} the instruction executes *)
  | Ev_branch of { mutable from_ : int; mutable to_ : int;
                   mutable is_call : bool }
      (** any control transfer, including synthetic ones host functions emit
          when they call other host functions *)
  | Ev_host_pre of host_fn
  | Ev_host_post of host_fn
  | Ev_svc of int

exception Runaway of int
(** Raised when a run exceeds its fuel (instruction budget). *)

type t

val create : unit -> t
(** Fresh machine: empty memory, stack pointer at the top of the stack
    region, no listeners, instruction cache enabled. *)

val cpu : t -> Cpu.t
val mem : t -> Memory.t

val set_icache_enabled : t -> bool -> unit
(** Ablation A1: disable the hot-instruction decode cache. *)

val set_host_fn_work : t -> int -> unit
(** Baseline cost of one host-function dispatch, in abstract work units
    (default 48).  A mounted library function stands for a real function
    body of dozens-to-hundreds of instructions; charging that body in
    {e every} configuration is what makes summary-based instrumentation
    nearly free relative to it (the Fig. 10 MALLOCS/Disk rows) while
    instruction-level instrumentation (DroidScope) still pays per
    instruction. *)

val icache_stats : t -> int * int
(** (hits, misses). *)

val mount_host_fn : t -> lib:string -> name:string -> addr:int ->
  (Cpu.t -> Memory.t -> unit) -> host_fn
(** Mount a host function at a guest address.  The handler must follow the
    AAPCS (result in r0).  @raise Invalid_argument if the address is
    taken. *)

val host_fn_addr : t -> string -> int
(** Address of a mounted function by name. @raise Not_found. *)

val find_host_fn : t -> int -> host_fn option

val add_listener : t -> (event -> unit) -> unit
(** Attach an analysis.  Listeners run in attachment order. *)

val clear_listeners : t -> unit

val emit_branch : t -> from_:int -> to_:int -> is_call:bool -> unit
(** Host functions use this to surface their internal call chains (e.g.
    [CallVoidMethodA] → [dvmCallMethodA] → [dvmInterpret]) as branch events
    so multilevel hooking can follow them (paper, Fig. 5). *)

val call_host : t -> from_:int -> string -> unit
(** [call_host t ~from_ name] invokes a mounted host function from host
    code, producing the full event sequence a guest call would: a call
    branch [from_ → addr], [Ev_host_pre], the handler, [Ev_host_post], and
    a return branch [addr → from_ + 4].  This is how libdvm internals
    surface their call chains ([NewStringUTF] → [dvmCreateStringFromCstr],
    Fig. 6; the Fig. 5 chain).  Arguments and results travel in registers,
    as they would on hardware.  @raise Not_found for unmounted names. *)

val load_program : t -> Ndroid_arm.Asm.program -> unit
(** Copy an assembled library into guest memory and remember it in the
    memory map. *)

val call_native : t -> ?fuel:int -> addr:int -> args:int list ->
  ?stack_args:int list -> unit -> int * int
(** Call a guest function: set up arguments per the AAPCS, run until it
    returns, give back (r0, r1).  Re-entrant — host functions may call back
    into guest code.  [fuel] (default 50M) bounds the instruction count.
    @raise Runaway when the fuel runs out. *)

val enable_superblocks :
  ?engine:Taint_engine.t ->
  ?on_block_entry:(int -> unit) ->
  ?is_boundary:(int -> bool) ->
  ?filter:(int -> bool) ->
  ?ring:Ndroid_obs.Ring.t ->
  t ->
  Superblock.t
(** Switch guest execution (for PCs accepted by [filter]) from the per-
    instruction fetch/decode/event loop to superblock execution: straight-
    line regions pre-decoded once, with Table V taint transfers fused at
    translate time and applied against [engine].  [on_block_entry] runs at
    every block entry (source-policy application); [is_boundary] addresses
    always start a block.  Note that block execution emits {e no} [Ev_insn]
    events — taint propagation happens through the fused ops instead — so it
    must not be combined with analyses that depend on per-instruction
    events (the attach layer keeps per-insn tracing and superblocks
    mutually exclusive). *)

val disable_superblocks : t -> unit
val superblocks : t -> Superblock.t option

val insn_count : t -> int
(** Guest instructions executed so far. *)

val host_calls : t -> int
val libs : t -> (string * int * int) list
(** Loaded/mounted regions (name, base, size) — input to the OS-level view
    reconstructor. *)
