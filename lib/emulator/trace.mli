(** Execution trace: a bounded ring of the most recent machine activity.

    Useful when a native flow misbehaves: attach, run, then print the tail —
    each line is an executed instruction (with address) or a host-function
    boundary, in order.  Bounded so tracing a long CF-Bench run cannot eat
    the heap.

    Since the observability rework this is a view over an
    {!Ndroid_obs.Ring}: {!attach} creates a private ring with instruction
    tracing enabled, and {!listen} instead records into a caller-supplied
    hub so machine activity interleaves with taint/JNI events in exported
    traces. *)

type entry =
  | Insn of { addr : int; insn : Ndroid_arm.Insn.t }
  | Host_enter of string
  | Host_leave of string

type t = Ndroid_obs.Ring.t

val attach : ?capacity:int -> ?filter:(int -> bool) -> Machine.t -> t
(** Start recording into a fresh ring ([capacity] defaults to 4096 entries;
    [filter] defaults to accepting every address). *)

val listen : ?filter:(int -> bool) -> Ndroid_obs.Ring.t -> Machine.t -> unit
(** Forward machine events into an existing hub.  Instruction events obey
    the hub's [tracing] gate. *)

val ring : t -> Ndroid_obs.Ring.t

val iter : t -> (entry -> unit) -> unit
(** Oldest first, without rebuilding a list. *)

val fold : ('a -> entry -> 'a) -> 'a -> t -> 'a

val entries : t -> entry list
(** Oldest first, at most [capacity]. *)

val total : t -> int
(** Entries ever recorded (including those that fell off the ring). *)

val clear : t -> unit
val pp_entry : Format.formatter -> entry -> unit
val pp : Format.formatter -> t -> unit
