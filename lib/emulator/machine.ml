module Cpu = Ndroid_arm.Cpu
module Memory = Ndroid_arm.Memory
module Insn = Ndroid_arm.Insn
module Exec = Ndroid_arm.Exec
module Icache = Ndroid_arm.Icache
module Asm = Ndroid_arm.Asm

type host_fn = { hf_name : string; hf_lib : string; hf_addr : int }

(* Ev_insn and Ev_branch have mutable payloads: the trace loop emits one
   preallocated cell of each per machine, overwriting the fields each step,
   so per-instruction event delivery allocates nothing.  Listeners must read
   the fields during [emit] and never retain the event value. *)
type event =
  | Ev_insn of { mutable addr : int; mutable insn : Insn.t }
  | Ev_branch of { mutable from_ : int; mutable to_ : int;
                   mutable is_call : bool }
  | Ev_host_pre of host_fn
  | Ev_host_post of host_fn
  | Ev_svc of int

exception Runaway of int

type t = {
  m_cpu : Cpu.t;
  m_mem : Memory.t;
  host_by_addr : (int, host_fn * (Cpu.t -> Memory.t -> unit)) Hashtbl.t;
  host_by_name : (string, host_fn * (Cpu.t -> Memory.t -> unit)) Hashtbl.t;
  (* mounted-address bounds: the trace loop's cheap "can this PC possibly be
     a host function?" gate, so guest code pays no hashtable hit per step *)
  mutable host_lo : int;
  mutable host_hi : int;
  mutable listeners : (event -> unit) array;
  mutable icache : Icache.t option;
  mutable insn_count : int;
  mutable host_calls : int;
  mutable libs : (string * int * int) list;
  mutable fuel : int;  (* set by the outermost call_native; -1 = unlimited *)
  mutable host_work : int;
  scratch : Exec.run;  (* reused per-step result; never escapes [step] *)
  ev_insn : event;  (* preallocated Ev_insn cell, fields rewritten per step *)
  ev_branch : event;  (* preallocated Ev_branch cell, likewise *)
  (* superblock execution (off by default): pre-decoded straight-line
     blocks with fused taint transfers replace the per-insn fetch/decode/
     event loop for eligible PCs *)
  mutable sb : Superblock.t option;
  mutable sb_engine : Taint_engine.t option;
  mutable sb_entry : int -> unit;  (* block-entry hook (policy application) *)
}

let create () =
  let cpu = Cpu.create () in
  Cpu.set_sp cpu Layout.stack_top;
  { m_cpu = cpu;
    m_mem = Memory.create ();
    host_by_addr = Hashtbl.create 256;
    host_by_name = Hashtbl.create 256;
    host_lo = max_int;
    host_hi = min_int;
    listeners = [||];
    icache = Some (Icache.create ());
    insn_count = 0;
    host_calls = 0;
    libs = Layout.regions;
    fuel = -1;
    host_work = 2500;
    scratch = Exec.run_create ();
    ev_insn = Ev_insn { addr = 0; insn = Insn.bx_lr };
    ev_branch = Ev_branch { from_ = 0; to_ = 0; is_call = false };
    sb = None;
    sb_engine = None;
    sb_entry = ignore }

let cpu t = t.m_cpu
let mem t = t.m_mem

let set_icache_enabled t enabled =
  t.icache <- (if enabled then Some (Icache.create ()) else None)

let set_host_fn_work t n = t.host_work <- max 0 n

(* The stand-in for the instructions a real library function body would
   execute: paid in every configuration. *)
let burn_host_work t =
  let acc = ref 1 in
  for i = 1 to t.host_work do
    acc := (!acc * 33) + i
  done;
  ignore (Sys.opaque_identity !acc)

let icache_stats t =
  match t.icache with
  | Some c -> (Icache.hits c, Icache.misses c)
  | None -> (0, 0)

let mount_host_fn t ~lib ~name ~addr run =
  if Hashtbl.mem t.host_by_addr addr then
    invalid_arg (Printf.sprintf "host address 0x%x already mounted" addr);
  let hf = { hf_name = name; hf_lib = lib; hf_addr = addr } in
  Hashtbl.replace t.host_by_addr addr (hf, run);
  Hashtbl.replace t.host_by_name name (hf, run);
  if addr < t.host_lo then t.host_lo <- addr;
  if addr > t.host_hi then t.host_hi <- addr;
  hf

let host_fn_addr t name = (fst (Hashtbl.find t.host_by_name name)).hf_addr

let find_host_fn t addr =
  match Hashtbl.find_opt t.host_by_addr addr with
  | Some (hf, _) -> Some hf
  | None -> None

(* Listeners live in an array: attaching stays in attachment order without
   the old quadratic list append, and emitting is an allocation-free indexed
   loop. *)
let add_listener t f = t.listeners <- Array.append t.listeners [| f |]
let clear_listeners t = t.listeners <- [||]
let has_listeners t = Array.length t.listeners > 0

let emit t ev =
  let ls = t.listeners in
  for i = 0 to Array.length ls - 1 do
    ls.(i) ev
  done

(* Rewrite the preallocated cells in place and hand them to the listeners. *)
let emit_insn t ~addr ~insn =
  (match t.ev_insn with
   | Ev_insn r ->
     r.addr <- addr;
     r.insn <- insn
   | _ -> assert false);
  emit t t.ev_insn

let emit_branch t ~from_ ~to_ ~is_call =
  if has_listeners t then begin
    (match t.ev_branch with
     | Ev_branch r ->
       r.from_ <- from_;
       r.to_ <- to_;
       r.is_call <- is_call
     | _ -> assert false);
    emit t t.ev_branch
  end

let call_host t ~from_ name =
  let hf, run = Hashtbl.find t.host_by_name name in
  t.host_calls <- t.host_calls + 1;
  burn_host_work t;
  if has_listeners t then begin
    emit_branch t ~from_ ~to_:hf.hf_addr ~is_call:true;
    emit t (Ev_host_pre hf)
  end;
  run t.m_cpu t.m_mem;
  if has_listeners t then begin
    emit t (Ev_host_post hf);
    emit_branch t ~from_:hf.hf_addr ~to_:(from_ + 4) ~is_call:false
  end

let load_program t prog =
  Asm.load prog t.m_mem;
  (* watch the image so later guest writes into it (self-modifying or
     decrypting code) invalidate superblocks and native summaries *)
  Memory.watch_code t.m_mem ~lo:(Asm.base prog)
    ~hi:(Asm.base prog + Asm.size prog - 1);
  t.libs <- t.libs @ [ (Printf.sprintf "lib@%x" (Asm.base prog), Asm.base prog,
                        Asm.size prog) ]

let mask32 = 0xFFFFFFFF

let burn t =
  let f = t.fuel in
  if f >= 0 then begin
    if f = 0 then raise (Runaway t.insn_count);
    t.fuel <- f - 1
  end

(* One scheduling quantum: either dispatch a host function or execute one
   guest instruction.  Returns unit; the caller polls the PC.

   Each step decodes at most once: the decode feeds both the Ev_insn
   listeners and execution via Exec.step_decoded.  Host-function dispatch is
   gated by the mounted-address bounds, so ordinary guest instructions skip
   the host hashtable entirely. *)
let step_insn t pc =
  burn t;
  t.insn_count <- t.insn_count + 1;
  let insn, size = Exec.fetch_decode ?icache:t.icache t.m_cpu t.m_mem pc in
  if has_listeners t then begin
    emit_insn t ~addr:pc ~insn;
    let s = t.scratch in
    Exec.step_into s t.m_cpu t.m_mem ~addr:pc insn size;
    (* copy out before emitting: a listener may re-enter [step] (e.g. a
       hook running guest code) and clobber the shared scratch record *)
    let branch_to = s.Exec.r_branch_to in
    let is_call = s.Exec.r_is_call in
    let svc = s.Exec.r_svc in
    if branch_to >= 0 then emit_branch t ~from_:pc ~to_:branch_to ~is_call;
    if svc >= 0 then emit t (Ev_svc svc)
  end
  else Exec.step_into t.scratch t.m_cpu t.m_mem ~addr:pc insn size

(* Execute one superblock's slots.  Returns [true] if the block ran to its
   end, [false] if it aborted because a store slot invalidated translated
   code (the remaining pre-decoded slots may describe stale bytes). *)
let exec_block t sb b =
  let slots = b.Superblock.b_slots in
  let n = Array.length slots in
  let ok = ref true in
  let i = ref 0 in
  while !ok && !i < n do
    let sl = Array.unsafe_get slots !i in
    burn t;
    t.insn_count <- t.insn_count + 1;
    (match sl.Superblock.sl_taint with
     | Superblock.T_none -> ()
     | Superblock.T_fused pairs -> (
       match t.sb_engine with
       | Some e -> Superblock.apply_fused sb e pairs
       | None -> ())
     | Superblock.T_step -> (
       match t.sb_engine with
       | Some e ->
         Insn_taint.step e t.m_cpu ~addr:sl.Superblock.sl_addr
           sl.Superblock.sl_insn
       | None -> ()));
    let s = t.scratch in
    Exec.step_into s t.m_cpu t.m_mem ~addr:sl.Superblock.sl_addr
      sl.Superblock.sl_insn sl.Superblock.sl_size;
    if has_listeners t then begin
      let branch_to = s.Exec.r_branch_to in
      let is_call = s.Exec.r_is_call in
      let svc = s.Exec.r_svc in
      if branch_to >= 0 then
        emit_branch t ~from_:sl.Superblock.sl_addr ~to_:branch_to ~is_call;
      if svc >= 0 then emit t (Ev_svc svc)
    end;
    if
      sl.Superblock.sl_store
      && Memory.code_gen t.m_mem <> b.Superblock.b_gen
    then ok := false;
    incr i
  done;
  Superblock.note_insns sb !i;
  !ok

(* Block-execution loop: probe (or chain to) a block at the current PC and
   run it, staying inside this loop across block boundaries so hot guest
   loops never return to the dispatcher.  Falls out on the return sentinel,
   host-function addresses, filter-rejected PCs, untranslatable PCs, and
   mid-block self-modification. *)
let exec_blocks t sb pc0 =
  let continue_ = ref true in
  let pc = ref pc0 in
  let prev = ref None in
  while !continue_ do
    let p = !pc in
    if
      p = Layout.return_sentinel
      || (p >= t.host_lo && p <= t.host_hi && Hashtbl.mem t.host_by_addr p)
      || not (Superblock.wants sb p)
    then continue_ := false
    else begin
      match
        match !prev with
        | Some b -> Superblock.chain_to sb b t.m_cpu t.m_mem p
        | None -> Superblock.probe sb t.m_cpu t.m_mem p
      with
      | None ->
        (* untranslatable here: single-step to surface the real behaviour *)
        step_insn t p;
        continue_ := false
      | Some b ->
        t.sb_entry p;
        if exec_block t sb b then begin
          prev := Some b;
          pc := Cpu.pc t.m_cpu
        end
        else continue_ := false
    end
  done

let step t =
  let pc = Cpu.pc t.m_cpu in
  match
    if pc >= t.host_lo && pc <= t.host_hi then
      Hashtbl.find_opt t.host_by_addr pc
    else None
  with
  | Some (hf, run) ->
    burn t;
    t.host_calls <- t.host_calls + 1;
    burn_host_work t;
    if has_listeners t then emit t (Ev_host_pre hf);
    run t.m_cpu t.m_mem;
    if has_listeners t then emit t (Ev_host_post hf);
    (* return to the caller, honouring interworking *)
    let ret = Cpu.lr t.m_cpu in
    if ret land 1 = 1 then begin
      t.m_cpu.Cpu.mode <- Cpu.Thumb;
      Cpu.set_pc t.m_cpu (ret land lnot 1)
    end
    else begin
      t.m_cpu.Cpu.mode <- Cpu.Arm;
      Cpu.set_pc t.m_cpu (ret land mask32)
    end;
    emit_branch t ~from_:hf.hf_addr ~to_:(ret land lnot 1) ~is_call:false
  | None -> (
    match t.sb with
    | Some sb when Superblock.wants sb pc -> exec_blocks t sb pc
    | _ -> step_insn t pc)

let call_native t ?(fuel = 50_000_000) ~addr ~args ?(stack_args = []) () =
  let cpu = t.m_cpu in
  let saved = Cpu.copy cpu in
  let outermost = t.fuel < 0 in
  if outermost then t.fuel <- fuel;
  Fun.protect
    ~finally:(fun () ->
      if outermost then t.fuel <- -1;
      (* restore everything; results were read before the restore *)
      Array.blit saved.Cpu.regs 0 cpu.Cpu.regs 0 16;
      cpu.Cpu.n <- saved.Cpu.n;
      cpu.Cpu.z <- saved.Cpu.z;
      cpu.Cpu.c <- saved.Cpu.c;
      cpu.Cpu.v <- saved.Cpu.v;
      cpu.Cpu.mode <- saved.Cpu.mode;
      Array.blit saved.Cpu.vfp_s 0 cpu.Cpu.vfp_s 0 32;
      Array.blit saved.Cpu.vfp_d 0 cpu.Cpu.vfp_d 0 16)
    (fun () ->
      List.iteri (fun i v -> if i < 4 then Cpu.set_reg cpu i v) args;
      (* excess register args spill to the stack before explicit stack args *)
      let reg_overflow =
        if List.length args > 4 then List.filteri (fun i _ -> i >= 4) args else []
      in
      let pushes = reg_overflow @ stack_args in
      let sp = Cpu.sp cpu - (4 * List.length pushes) in
      List.iteri (fun i v -> Memory.write_u32 t.m_mem (sp + (4 * i)) v) pushes;
      Cpu.set_sp cpu sp;
      Cpu.set_reg cpu 14 Layout.return_sentinel;
      if addr land 1 = 1 then begin
        cpu.Cpu.mode <- Cpu.Thumb;
        Cpu.set_pc cpu (addr land lnot 1)
      end
      else begin
        cpu.Cpu.mode <- Cpu.Arm;
        Cpu.set_pc cpu addr
      end;
      while Cpu.pc cpu <> Layout.return_sentinel do
        step t
      done;
      (Cpu.reg cpu 0, Cpu.reg cpu 1))

let insn_count t = t.insn_count
let host_calls t = t.host_calls
let libs t = t.libs

let enable_superblocks ?engine ?(on_block_entry = fun (_ : int) -> ())
    ?is_boundary ?filter ?ring t =
  let sb = Superblock.create ?filter ?is_boundary () in
  (match ring with Some r -> Superblock.set_ring sb r | None -> ());
  t.sb <- Some sb;
  t.sb_engine <- engine;
  t.sb_entry <- on_block_entry;
  sb

let disable_superblocks t =
  t.sb <- None;
  t.sb_engine <- None;
  t.sb_entry <- ignore

let superblocks t = t.sb
