module Ring = Ndroid_obs.Ring
module Event = Ndroid_obs.Event

type entry =
  | Insn of { addr : int; insn : Ndroid_arm.Insn.t }
  | Host_enter of string
  | Host_leave of string

(* The trace is a view over an [Ndroid_obs.Ring]: instruction and
   host-boundary events land in the same hub as everything else, so an
   exported Chrome trace shows them alongside taint and JNI events.  A
   trace attached here owns its ring (created with [tracing] on). *)
type t = Ring.t

let entry_of_record r =
  match r.Event.e_kind with
  | Event.K_insn -> Some (Insn { addr = r.Event.e_addr; insn = r.Event.e_insn })
  | Event.K_host_enter -> Some (Host_enter r.Event.e_name)
  | Event.K_host_leave -> Some (Host_leave r.Event.e_name)
  | _ -> None

let listen ?(filter = fun _ -> true) ring machine =
  Machine.add_listener machine (fun ev ->
      match ev with
      | Machine.Ev_insn { addr; insn } ->
        if filter addr then Ring.emit_insn ring ~addr insn
      | Machine.Ev_host_pre hf -> Ring.emit_host_enter ring hf.Machine.hf_name
      | Machine.Ev_host_post hf -> Ring.emit_host_leave ring hf.Machine.hf_name
      | Machine.Ev_branch _ | Machine.Ev_svc _ -> ())

let attach ?(capacity = 4096) ?filter machine =
  let ring = Ring.create ~capacity ~tracing:true () in
  listen ?filter ring machine;
  ring

let ring t = t

let iter t f =
  Ring.iter t (fun r ->
      match entry_of_record r with Some e -> f e | None -> ())

let fold f init t =
  let acc = ref init in
  iter t (fun e -> acc := f !acc e);
  !acc

let entries t = List.rev (fold (fun acc e -> e :: acc) [] t)
let total t = Ring.total t
let clear t = Ring.clear t

let pp_entry ppf = function
  | Insn { addr; insn } ->
    Format.fprintf ppf "%08x:  %a" addr Ndroid_arm.Insn.pp insn
  | Host_enter name -> Format.fprintf ppf "--> %s" name
  | Host_leave name -> Format.fprintf ppf "<-- %s" name

let pp ppf t = iter t (fun e -> Format.fprintf ppf "%a@." pp_entry e)
