(** NDroid's taint engine.

    "NDroid maintains shadow registers to store the related registers'
    taints and a taint map to store the memories' taints.  The taint
    granularity of NDroid is byte" (paper, Sec. V-E).

    We extend the paper's engine with shadow VFP registers so the
    floating-point workloads are covered too (the paper defers non-integer
    operations to future work). *)

module Taint = Ndroid_taint.Taint
module Insn = Ndroid_arm.Insn
module Cpu = Ndroid_arm.Cpu

type t

val create : unit -> t

val reg : t -> int -> Taint.t
val set_reg : t -> int -> Taint.t -> unit
val add_reg : t -> int -> Taint.t -> unit

val sreg : t -> int -> Taint.t
(** Shadow of VFP single register s<i>. *)

val set_sreg : t -> int -> Taint.t -> unit
val dreg : t -> int -> Taint.t
val set_dreg : t -> int -> Taint.t -> unit

val mem : t -> int -> int -> Taint.t
(** [mem t addr len]: union of the byte taints in [addr, addr+len). *)

val set_mem : t -> int -> int -> Taint.t -> unit
val add_mem : t -> int -> int -> Taint.t -> unit
val clear_mem : t -> int -> int -> unit
val copy_mem : t -> src:int -> dst:int -> len:int -> unit

val op2_taint : t -> Insn.operand2 -> Taint.t
(** Taint of a flexible operand: clear for immediates, the register's taint
    otherwise (the shift-amount register is ignored, exactly as Table V's
    rules only name Rn and Rm). *)

val tainted_bytes : t -> int
val any_reg_tainted : t -> bool
val reset : t -> unit

val taint_map : t -> Ndroid_taint.Taint_map.t
(** Direct access for the system-lib hook engine. *)
