(** Superblock translation: pre-decoded straight-line blocks with fused
    taint propagation.

    One level up from the per-instruction {!Ndroid_arm.Icache}: a probe at a
    block-entry address yields a flat array of pre-decoded slots, each
    carrying a taint micro-op computed once at translate time.  Maximal runs
    of unconditional register-only instructions collapse their Table V
    transfers into a single fused operation over {e entry}-register taints;
    everything else falls back to the per-instruction rule
    ({!Insn_taint.step}).  Blocks self-invalidate by generation compare:
    {!Ndroid_arm.Memory.code_gen} (writes into watched code ranges) and the
    boundary generation ({!flush}, bumped when a new source-policy address
    appears and old block boundaries may now straddle it). *)

type taint_op =
  | T_none
  | T_fused of (int * int) array
      (** (rd, entry-register dependence mask) pairs: taint of [rd] after
          the run is the union of entry taints of the registers in mask *)
  | T_step  (** apply {!Insn_taint.step} at this program point *)

type slot = {
  sl_addr : int;
  sl_insn : Ndroid_arm.Insn.t;
  sl_size : int;
  sl_taint : taint_op;
  sl_store : bool;
      (** may write guest memory: executor re-checks [code_gen] after it *)
}

type block = {
  b_addr : int;
  b_mode : Ndroid_arm.Cpu.mode;
  b_gen : int;
  b_bgen : int;
  b_slots : slot array;
  mutable b_chain : block option;
      (** last observed successor, for direct block chaining *)
}

type t

val create :
  ?slots:int ->
  ?max_insns:int ->
  ?filter:(int -> bool) ->
  ?is_boundary:(int -> bool) ->
  unit ->
  t
(** Direct-mapped block cache.  [filter] limits which PCs are eligible for
    block execution at all; [is_boundary] marks addresses blocks must not
    run through (source-policy entry points get their policy applied at
    block entry, so they must {e start} a block). *)

val set_ring : t -> Ndroid_obs.Ring.t -> unit
(** Observability hub for [sb_compile] events (default: disabled ring). *)

val wants : t -> int -> bool
(** Does the eligibility filter accept this PC? *)

val flush : t -> unit
(** Invalidate every cached block (lazily, by bumping the boundary
    generation) — called when a new source-policy address appears. *)

val translate : t -> Ndroid_arm.Cpu.t -> Ndroid_arm.Memory.t -> int ->
  block option
(** Decode a fresh block at an address (no cache interaction); [None] if
    even the first instruction fails to decode. *)

val probe : t -> Ndroid_arm.Cpu.t -> Ndroid_arm.Memory.t -> int ->
  block option
(** Cached lookup: a valid cached block counts a hit; a stale one counts an
    invalidation and is retranslated in place. *)

val chain_to : t -> block -> Ndroid_arm.Cpu.t -> Ndroid_arm.Memory.t ->
  int -> block option
(** [chain_to t prev cpu mem next]: follow (or establish) the direct link
    from a just-executed block to its successor, skipping the table probe
    on the hot loop path. *)

val apply_fused : t -> Taint_engine.t -> (int * int) array -> unit
(** Apply one fused transfer: read all entry-register taints, then write
    each (rd, mask) pair's union. *)

val ends_block : Ndroid_arm.Insn.t -> bool
(** Exposed for the summary layer: instructions that can write the PC. *)

val fuse : Ndroid_arm.Insn.t array -> (int * int) array option
(** Compose the Table V transfers of a whole instruction sequence into
    (rd, entry-register dependence mask) pairs, or [None] if any
    instruction's rule needs live CPU state. *)

val note_insns : t -> int -> unit
(** Account instructions retired through block execution. *)

val compiles : t -> int
val hits : t -> int
val invalidations : t -> int
val insns : t -> int
