(** Table V: the taint propagation logic for ARM/Thumb instructions.

    One rule per instruction class, applied by the instruction tracer
    {e before} the instruction executes (so register values still describe
    the state the instruction consumes):

    - [binary-op Rd, Rn, Rm]   : t(Rd) := t(Rn) ∪ t(Rm)
    - [binary-op Rd, Rm]       : t(Rd) := t(Rd) ∪ t(Rm)
    - [binary-op Rd, Rm, #imm] : t(Rd) := t(Rm)
    - [unary Rd, Rm]           : t(Rd) := t(Rm)
    - [mov Rd, #imm]           : t(Rd) := clear
    - [mov Rd, Rm]             : t(Rd) := t(Rm)
    - [LDR* Rd, Rn, #imm]      : t(Rd) := t(M[addr]) ∪ t(Rn)
    - [LDM/POP]                : t(Ri) := t(M[a_i]) ∪ t(Rn) for each listed Ri
    - [STR* Rd, Rn, #imm]      : t(M[addr]) := t(Rd)
    - [STM/PUSH]               : t(M[a_i]) := t(Ri)

    The LDR rule's "∪ t(Rn)" is deliberate: "if the tainted input is the
    address of an untainted value, the taint will be propagated to it"
    (paper, Sec. V-C).  Instructions whose condition fails propagate
    nothing.  VFP instructions are handled as an extension (the paper
    defers them to future work) with the analogous rules on shadow VFP
    registers. *)

val step :
  Taint_engine.t -> Ndroid_arm.Cpu.t -> addr:int -> Ndroid_arm.Insn.t -> unit
(** Apply the propagation rule for one instruction about to execute at
    [addr] on the given CPU state. *)

val rules_table : (string * string * string) list
(** The table itself — (instruction format, semantics, propagation) — used
    by the E9 verification bench to print Table V alongside test
    outcomes. *)
