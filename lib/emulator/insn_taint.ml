module Taint = Ndroid_taint.Taint
module Insn = Ndroid_arm.Insn
module Cpu = Ndroid_arm.Cpu

let mask32 = 0xFFFFFFFF

let pc_read cpu addr =
  match cpu.Cpu.mode with Cpu.Arm -> addr + 8 | Cpu.Thumb -> addr + 4

let reg_value cpu addr r =
  if r = 15 then pc_read cpu addr land mask32 else Cpu.reg cpu r

(* Shift value computation without flags — only the resulting value matters
   for address arithmetic in the propagation rules. *)
let shifted_value value kind amount =
  let value = value land mask32 in
  match (kind, amount) with
  | _, 0 -> value
  | Insn.LSL, n when n < 32 -> (value lsl n) land mask32
  | Insn.LSL, _ -> 0
  | Insn.LSR, n when n < 32 -> value lsr n
  | Insn.LSR, _ -> 0
  | Insn.ASR, n when n < 32 ->
    let v = value lsr n in
    if value land 0x80000000 <> 0 then (v lor (mask32 lsl (32 - n))) land mask32
    else v
  | Insn.ASR, _ -> if value land 0x80000000 <> 0 then mask32 else 0
  | Insn.ROR, n ->
    let n = n land 31 in
    ((value lsr n) lor (value lsl (32 - n))) land mask32

let mem_access_addr cpu addr ~rn ~offset ~pre =
  let base = reg_value cpu addr rn in
  if not pre then base
  else
    let off =
      match offset with
      | Insn.Off_imm v -> v
      | Insn.Off_reg (up, rm, kind, amount) ->
        let v = shifted_value (reg_value cpu addr rm) kind amount in
        if up then v else -v
    in
    (base + off) land mask32

let width_bytes = function Insn.Word -> 4 | Insn.Byte -> 1 | Insn.Half -> 2

let popcount16 mask =
  let rec go m acc = if m = 0 then acc else go (m land (m - 1)) (acc + 1) in
  go (mask land 0xFFFF) 0

let block_start cpu ~rn ~mode ~regs =
  let base = Cpu.reg cpu rn in
  let count = popcount16 regs in
  match mode with
  | Insn.IA -> base
  | Insn.IB -> base + 4
  | Insn.DA -> base - (4 * count) + 4
  | Insn.DB -> base - (4 * count)

let step engine cpu ~addr insn =
  if Cpu.cond_passed cpu (Insn.cond_of insn) then
    match insn with
    | Insn.Dp { op; rd; rn; op2; _ } -> (
      match op with
      | Insn.TST | Insn.TEQ | Insn.CMP | Insn.CMN ->
        (* flags only; no control-flow taint (paper, Sec. VII) *)
        ()
      | Insn.MOV | Insn.MVN -> (
        match op2 with
        | Insn.Imm _ -> Taint_engine.set_reg engine rd Taint.clear
        | Insn.Reg _ | Insn.Reg_shift_imm _ | Insn.Reg_shift_reg _ ->
          Taint_engine.set_reg engine rd (Taint_engine.op2_taint engine op2))
      | Insn.AND | Insn.EOR | Insn.SUB | Insn.RSB | Insn.ADD | Insn.ADC
      | Insn.SBC | Insn.RSC | Insn.ORR | Insn.BIC -> (
        match op2 with
        | Insn.Imm _ ->
          (* binary-op Rd, Rm, #imm: t(Rd) := t(Rm) — here "Rm" is rn *)
          Taint_engine.set_reg engine rd (Taint_engine.reg engine rn)
        | Insn.Reg _ | Insn.Reg_shift_imm _ | Insn.Reg_shift_reg _ ->
          Taint_engine.set_reg engine rd
            (Taint.union
               (Taint_engine.reg engine rn)
               (Taint_engine.op2_taint engine op2))))
    | Insn.Mul { rd; rm; rs; _ } ->
      Taint_engine.set_reg engine rd
        (Taint.union (Taint_engine.reg engine rm) (Taint_engine.reg engine rs))
    | Insn.Mla { rd; rm; rs; rn; _ } ->
      Taint_engine.set_reg engine rd
        (Taint.union
           (Taint.union (Taint_engine.reg engine rm) (Taint_engine.reg engine rs))
           (Taint_engine.reg engine rn))
    | Insn.Mull { rdlo; rdhi; rm; rs; _ } ->
      let tag =
        Taint.union (Taint_engine.reg engine rm) (Taint_engine.reg engine rs)
      in
      Taint_engine.set_reg engine rdlo tag;
      Taint_engine.set_reg engine rdhi tag
    | Insn.Clz { rd; rm; _ } ->
      Taint_engine.set_reg engine rd (Taint_engine.reg engine rm)
    | Insn.Mem { load; width; rd; rn; offset; pre; _ } ->
      let a = mem_access_addr cpu addr ~rn ~offset ~pre in
      let n = width_bytes width in
      if load then
        (* t(Rd) := t(M[addr]) ∪ t(Rn) *)
        Taint_engine.set_reg engine rd
          (Taint.union (Taint_engine.mem engine a n) (Taint_engine.reg engine rn))
      else
        (* t(M[addr]) := t(Rd) *)
        Taint_engine.set_mem engine a n (Taint_engine.reg engine rd)
    | Insn.Block { load; rn; mode; regs; _ } ->
      (* walk mask bits lowest-register-first; no register list is built *)
      let a = ref (block_start cpu ~rn ~mode ~regs) in
      if load then begin
        let base_taint = Taint_engine.reg engine rn in
        for r = 0 to 15 do
          if regs land (1 lsl r) <> 0 then begin
            Taint_engine.set_reg engine r
              (Taint.union (Taint_engine.mem engine (!a land mask32) 4) base_taint);
            a := !a + 4
          end
        done
      end
      else
        for r = 0 to 15 do
          if regs land (1 lsl r) <> 0 then begin
            Taint_engine.set_mem engine (!a land mask32) 4
              (Taint_engine.reg engine r);
            a := !a + 4
          end
        done
    | Insn.B _ | Insn.Bx _ | Insn.Svc _ -> ()
    | Insn.Vdp { op = _; prec; vd; vn; vm; _ } -> (
      match prec with
      | Insn.F32 ->
        Taint_engine.set_sreg engine vd
          (Taint.union (Taint_engine.sreg engine vn) (Taint_engine.sreg engine vm))
      | Insn.F64 ->
        Taint_engine.set_dreg engine vd
          (Taint.union (Taint_engine.dreg engine vn) (Taint_engine.dreg engine vm)))
    | Insn.Vmem { load; prec; vd; rn; offset; _ } -> (
      let a = (reg_value cpu addr rn + offset) land mask32 in
      let n = match prec with Insn.F32 -> 4 | Insn.F64 -> 8 in
      match (load, prec) with
      | true, Insn.F32 ->
        Taint_engine.set_sreg engine vd
          (Taint.union (Taint_engine.mem engine a n) (Taint_engine.reg engine rn))
      | true, Insn.F64 ->
        Taint_engine.set_dreg engine vd
          (Taint.union (Taint_engine.mem engine a n) (Taint_engine.reg engine rn))
      | false, Insn.F32 -> Taint_engine.set_mem engine a n (Taint_engine.sreg engine vd)
      | false, Insn.F64 -> Taint_engine.set_mem engine a n (Taint_engine.dreg engine vd))
    | Insn.Vmov_core { to_core; rt; sn; _ } ->
      if to_core then Taint_engine.set_reg engine rt (Taint_engine.sreg engine sn)
      else Taint_engine.set_sreg engine sn (Taint_engine.reg engine rt)
    | Insn.Vcvt { to_double; vd; vm; _ } ->
      if to_double then Taint_engine.set_dreg engine vd (Taint_engine.sreg engine vm)
      else Taint_engine.set_sreg engine vd (Taint_engine.dreg engine vm)
    | Insn.Vcvt_int { to_float; prec; vd; vm; _ } ->
      if to_float then (
        let src = Taint_engine.sreg engine vm in
        match prec with
        | Insn.F32 -> Taint_engine.set_sreg engine vd src
        | Insn.F64 -> Taint_engine.set_dreg engine vd src)
      else
        let src =
          match prec with
          | Insn.F32 -> Taint_engine.sreg engine vm
          | Insn.F64 -> Taint_engine.dreg engine vm
        in
        Taint_engine.set_sreg engine vd src

let rules_table =
  [ ("binary-op Rd, Rn, Rm", "Rd = Rn op Rm", "t(Rd) = t(Rn) OR t(Rm)");
    ("binary-op Rd, Rm", "Rd = Rd op Rm", "t(Rd) = t(Rd) OR t(Rm)");
    ("binary-op Rd, Rm, #imm", "Rd = Rm op #imm", "t(Rd) = t(Rm)");
    ("unary Rd, Rm", "Rd = op Rm", "t(Rd) = t(Rm)");
    ("mov Rd, #imm", "Rd = #imm", "t(Rd) = TAINT_CLEAR");
    ("mov Rd, Rm", "Rd = Rm", "t(Rd) = t(Rm)");
    ("LDR* Rd, Rn, #imm", "Rd = M[Cal(Rn,#imm)]", "t(Rd) = t(M[addr]) OR t(Rn)");
    ("LDM(POP) regList, Rn", "{Ri..Rj} = M[start..end]",
     "t(Ri) = t(M[a_i]) OR t(Rn) for each i");
    ("STR* Rd, Rn, #imm", "M[Cal(Rn,#imm)] = Rd", "t(M[addr]) = t(Rd)");
    ("STM(PUSH) regList, Rn", "M[start..end] = {Ri..Rj}", "t(M[a_i]) = t(Ri)") ]
