module Insn = Ndroid_arm.Insn
module Cpu = Ndroid_arm.Cpu
module Memory = Ndroid_arm.Memory
module Exec = Ndroid_arm.Exec
module Taint = Ndroid_taint.Taint
module Ring = Ndroid_obs.Ring

(* One level up from the direct-mapped [Icache]: instead of caching single
   decodes, cache whole straight-line regions ("superblocks") as flat
   micro-op arrays.  Each slot carries its pre-decoded instruction plus a
   taint micro-op computed once at translate time:

   - [T_fused]: the composed Table V transfer of a maximal run of
     unconditional register-only instructions — each written register's
     taint is a union over *entry* register taints, captured as a 16-bit
     dependence mask.  Applying one fused op replaces per-instruction rule
     dispatch for the whole run.
   - [T_step]: the per-instruction fallback ({!Insn_taint.step}) for
     anything whose rule needs live CPU state (memory addresses, condition
     flags, VFP registers).

   Blocks record the {!Memory.code_gen} they were translated under and a
   boundary generation (bumped when a new source-policy address appears),
   so stale translations self-invalidate on the next probe. *)

type taint_op =
  | T_none
  | T_fused of (int * int) array  (* (rd, entry-register dependence mask) *)
  | T_step

type slot = {
  sl_addr : int;
  sl_insn : Insn.t;
  sl_size : int;
  sl_taint : taint_op;
  sl_store : bool;  (* may write guest memory: re-check code_gen after *)
}

type block = {
  b_addr : int;
  b_mode : Cpu.mode;
  b_gen : int;  (* Memory.code_gen at translate time *)
  b_bgen : int;  (* boundary generation at translate time *)
  b_slots : slot array;
  mutable b_chain : block option;  (* last observed successor (direct chaining) *)
}

type t = {
  tbl : block option array;
  mask : int;
  max_insns : int;
  filter : int -> bool;
  is_boundary : int -> bool;
  mutable ring : Ring.t;
  mutable bgen : int;
  mutable compiles : int;
  mutable hits : int;
  mutable invalidations : int;
  mutable insns : int;  (* instructions retired through block execution *)
  scratch : Taint.t array;  (* entry-register taints for fused application *)
}

let default_slots = 2048

let create ?(slots = default_slots) ?(max_insns = 32)
    ?(filter = fun _ -> true) ?(is_boundary = fun _ -> false) () =
  let slots = max 16 slots in
  let slots =
    (* round up to a power of two for the mask *)
    let rec up n = if n >= slots then n else up (n * 2) in
    up 16
  in
  { tbl = Array.make slots None;
    mask = slots - 1;
    max_insns = max 1 max_insns;
    filter;
    is_boundary;
    ring = Ring.disabled;
    bgen = 0;
    compiles = 0;
    hits = 0;
    invalidations = 0;
    insns = 0;
    scratch = Array.make 16 Taint.clear }

let set_ring t ring = t.ring <- ring
let wants t addr = t.filter addr
let flush t = t.bgen <- t.bgen + 1
let compiles t = t.compiles
let hits t = t.hits
let invalidations t = t.invalidations
let insns t = t.insns
let note_insns t n = t.insns <- t.insns + n

(* ---- block boundaries ---- *)

(* Any instruction that can write the PC (or trap) ends a block: branches,
   data-processing with rd = 15, PC loads, POP {…, pc}, SVC. *)
let ends_block = function
  | Insn.B _ | Insn.Bx _ | Insn.Svc _ -> true
  | Insn.Dp { rd; _ } | Insn.Mul { rd; _ } | Insn.Mla { rd; _ }
  | Insn.Clz { rd; _ } ->
    rd = 15
  | Insn.Mull { rdlo; rdhi; _ } -> rdlo = 15 || rdhi = 15
  | Insn.Mem { load; rd; _ } -> load && rd = 15
  | Insn.Block { load; regs; _ } -> load && regs land 0x8000 <> 0
  | Insn.Vmov_core { to_core; rt; _ } -> to_core && rt = 15
  | Insn.Vdp _ | Insn.Vmem _ | Insn.Vcvt _ | Insn.Vcvt_int _ -> false

let can_store = function
  | Insn.Mem { load = false; _ }
  | Insn.Block { load = false; _ }
  | Insn.Vmem { load = false; _ } ->
    true
  | _ -> false

(* ---- symbolic Table V over entry-register dependence masks ---- *)

let op2_mask masks = function
  | Insn.Imm _ -> None
  | Insn.Reg r | Insn.Reg_shift_imm (r, _, _) | Insn.Reg_shift_reg (r, _, _) ->
    (* op2_taint ignores the shift-amount register, exactly as Table V
       only names Rn and Rm *)
    Some masks.(r)

(* [fuse_step masks written insn] folds [insn]'s Table V rule into the
   symbolic state when the rule is a pure function of entry-register taints
   — unconditional, integer, register-only.  Returns [false] (state
   untouched) for anything needing live CPU state at its program point. *)
let fuse_step masks written insn =
  let set rd m =
    masks.(rd) <- m;
    written := !written lor (1 lsl rd)
  in
  match insn with
  | Insn.Dp { cond = Insn.AL; op; rd; rn; op2; _ } when rd <> 15 -> (
    match op with
    | Insn.TST | Insn.TEQ | Insn.CMP | Insn.CMN -> true  (* flags only *)
    | Insn.MOV | Insn.MVN -> (
      match op2_mask masks op2 with
      | None -> set rd 0; true
      | Some m -> set rd m; true)
    | Insn.AND | Insn.EOR | Insn.SUB | Insn.RSB | Insn.ADD | Insn.ADC
    | Insn.SBC | Insn.RSC | Insn.ORR | Insn.BIC -> (
      match op2_mask masks op2 with
      | None -> set rd masks.(rn); true
      | Some m -> set rd (masks.(rn) lor m); true))
  | Insn.Mul { cond = Insn.AL; rd; rm; rs; _ } when rd <> 15 ->
    set rd (masks.(rm) lor masks.(rs));
    true
  | Insn.Mla { cond = Insn.AL; rd; rm; rs; rn; _ } when rd <> 15 ->
    set rd (masks.(rm) lor masks.(rs) lor masks.(rn));
    true
  | Insn.Mull { cond = Insn.AL; rdlo; rdhi; rm; rs; _ }
    when rdlo <> 15 && rdhi <> 15 ->
    let m = masks.(rm) lor masks.(rs) in
    set rdlo m;
    set rdhi m;
    true
  | Insn.Clz { cond = Insn.AL; rd; rm } when rd <> 15 ->
    set rd masks.(rm);
    true
  | _ -> false

let identity_masks () = Array.init 16 (fun i -> 1 lsl i)

let fused_pairs masks written =
  let n = ref 0 in
  for r = 0 to 15 do
    if written land (1 lsl r) <> 0 then incr n
  done;
  let pairs = Array.make !n (0, 0) in
  let i = ref 0 in
  for r = 0 to 15 do
    if written land (1 lsl r) <> 0 then begin
      pairs.(!i) <- (r, masks.(r));
      incr i
    end
  done;
  pairs

(* Whole-body fusion for the summary layer: the composed transfer of an
   entire straight-line function, or [None] if any instruction resists. *)
let fuse insns =
  let masks = identity_masks () in
  let written = ref 0 in
  if Array.for_all (fuse_step masks written) insns then
    Some (fused_pairs masks !written)
  else None

(* Compute the taint micro-op per slot: maximal fusable runs collapse to a
   single [T_fused] at the run's first slot (the rest become [T_none]),
   which is observationally equivalent because fused rules neither read nor
   are read by anything else inside the run. *)
let taint_ops insns =
  let n = Array.length insns in
  let ops = Array.make n T_none in
  let i = ref 0 in
  while !i < n do
    let masks = identity_masks () in
    let written = ref 0 in
    if fuse_step masks written insns.(!i) then begin
      let start = !i in
      incr i;
      while !i < n && fuse_step masks written insns.(!i) do
        incr i
      done;
      if !written <> 0 then ops.(start) <- T_fused (fused_pairs masks !written)
    end
    else begin
      (match insns.(!i) with
       | Insn.B _ | Insn.Bx _ | Insn.Svc _ -> ()
       | _ -> ops.(!i) <- T_step);
      incr i
    end
  done;
  ops

(* ---- translation ---- *)

let translate t cpu mem addr =
  let gen = Memory.code_gen mem in
  let rev = ref [] in
  let count = ref 0 in
  let pos = ref addr in
  let stop = ref false in
  (while not !stop && !count < t.max_insns do
     match Exec.fetch_decode cpu mem !pos with
     | exception Exec.Undefined _ -> stop := true
     | insn, size ->
       rev := (!pos, insn, size) :: !rev;
       incr count;
       pos := !pos + size;
       if ends_block insn || t.is_boundary !pos then stop := true
   done);
  match !rev with
  | [] -> None
  | rev ->
    let triples = Array.of_list (List.rev rev) in
    let insns = Array.map (fun (_, i, _) -> i) triples in
    let ops = taint_ops insns in
    let slots =
      Array.mapi
        (fun i (a, insn, size) ->
          { sl_addr = a;
            sl_insn = insn;
            sl_size = size;
            sl_taint = ops.(i);
            sl_store = can_store insn })
        triples
    in
    t.compiles <- t.compiles + 1;
    Ring.emit_sb_compile t.ring ~addr ~insns:(Array.length slots);
    Some
      { b_addr = addr;
        b_mode = cpu.Cpu.mode;
        b_gen = gen;
        b_bgen = t.bgen;
        b_slots = slots;
        b_chain = None }

let valid t mem cpu b =
  b.b_mode = cpu.Cpu.mode
  && b.b_gen = Memory.code_gen mem
  && b.b_bgen = t.bgen

let probe t cpu mem addr =
  let idx = (addr lsr 1) land t.mask in
  match t.tbl.(idx) with
  | Some b when b.b_addr = addr && valid t mem cpu b ->
    t.hits <- t.hits + 1;
    Some b
  | prev -> (
    (match prev with
     | Some b when b.b_addr = addr -> t.invalidations <- t.invalidations + 1
     | _ -> ());
    match translate t cpu mem addr with
    | None -> None
    | Some b ->
      t.tbl.(idx) <- Some b;
      Some b)

(* [chain_to b cpu mem next]: follow (or establish) the direct link from a
   just-executed block to its successor, skipping the table probe on the
   hot loop path. *)
let chain_to t prev cpu mem next =
  match prev.b_chain with
  | Some c when c.b_addr = next && valid t mem cpu c ->
    t.hits <- t.hits + 1;
    Some c
  | _ -> (
    match probe t cpu mem next with
    | Some c ->
      prev.b_chain <- Some c;
      Some c
    | None -> None)

(* ---- fused taint application ---- *)

let apply_fused t engine pairs =
  let scratch = t.scratch in
  for r = 0 to 15 do
    scratch.(r) <- Taint_engine.reg engine r
  done;
  Array.iter
    (fun (rd, mask) ->
      let tag = ref Taint.clear in
      let m = ref mask in
      while !m <> 0 do
        let r = !m land (- !m) in
        (* index of the lowest set bit *)
        let rec log2 v acc = if v = 1 then acc else log2 (v lsr 1) (acc + 1) in
        tag := Taint.union !tag scratch.(log2 r 0);
        m := !m land (!m - 1)
      done;
      Taint_engine.set_reg engine rd !tag)
    pairs
