module Taint = Ndroid_taint.Taint
module Taint_map = Ndroid_taint.Taint_map
module Shadow_regs = Ndroid_taint.Shadow_regs
module Insn = Ndroid_arm.Insn
module Cpu = Ndroid_arm.Cpu

type t = {
  regs : Shadow_regs.t;
  sregs : Shadow_regs.t;
  dregs : Shadow_regs.t;
  map : Taint_map.t;
}

let create () =
  { regs = Shadow_regs.create 16;
    sregs = Shadow_regs.create 32;
    dregs = Shadow_regs.create 16;
    map = Taint_map.create () }

let reg t i = Shadow_regs.get t.regs i
let set_reg t i tag = Shadow_regs.set t.regs i tag
let add_reg t i tag = Shadow_regs.add t.regs i tag
let sreg t i = Shadow_regs.get t.sregs i
let set_sreg t i tag = Shadow_regs.set t.sregs i tag
let dreg t i = Shadow_regs.get t.dregs i
let set_dreg t i tag = Shadow_regs.set t.dregs i tag

let mem t addr len = Taint_map.get_range t.map addr len
let set_mem t addr len tag = Taint_map.set_range t.map addr len tag
let add_mem t addr len tag = Taint_map.add_range t.map addr len tag
let clear_mem t addr len = Taint_map.clear_range t.map addr len
let copy_mem t ~src ~dst ~len = Taint_map.copy_range t.map ~src ~dst ~len

let op2_taint t = function
  | Insn.Imm _ -> Taint.clear
  | Insn.Reg r | Insn.Reg_shift_imm (r, _, _) | Insn.Reg_shift_reg (r, _, _) ->
    reg t r

let tainted_bytes t = Taint_map.tainted_bytes t.map
let any_reg_tainted t = Shadow_regs.any_tainted t.regs

let reset t =
  Shadow_regs.clear_all t.regs;
  Shadow_regs.clear_all t.sregs;
  Shadow_regs.clear_all t.dregs;
  Taint_map.reset t.map

let taint_map t = t.map
