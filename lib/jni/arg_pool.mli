(** A reusable push-buffer for JNI argument marshaling.

    The seed bridge built every Java→native slot vector and native→Java
    argument vector out of intermediate lists ([List.map2] + [List.concat] +
    [Array.of_list]) on every crossing.  A pool replaces all of that with
    pushes into one growable buffer that belongs to the device and lives for
    its whole lifetime; {!emit} then produces the single exactly-sized array
    the call consumes.

    Discipline for nested crossings (Java → native → Java → …): call
    {!reset}, push, then {!emit} {e before} transferring control — the
    emitted array is independent of the buffer, so re-entrant crossings can
    reuse the pool freely. *)

type 'a t

val create : ?capacity:int -> 'a -> 'a t
(** [create dummy] makes an empty pool; [dummy] fills unused slots. *)

val reset : 'a t -> unit
(** Empty the pool (keeps the backing store). *)

val length : 'a t -> int

val high_water : 'a t -> int
(** Widest crossing ever marshaled through this pool — a cheap size
    metric for the observability registry. *)

val push : 'a t -> 'a -> unit
(** Append, growing the backing store geometrically when full. *)

val emit : 'a t -> 'a array
(** The pushed elements as a fresh exactly-sized array — the only per-call
    allocation left on the marshaling path. *)
