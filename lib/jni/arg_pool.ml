type 'a t = {
  mutable data : 'a array;
  mutable len : int;
  dummy : 'a;
  mutable high_water : int;
}

let create ?(capacity = 16) dummy =
  { data = Array.make (max capacity 1) dummy; len = 0; dummy; high_water = 0 }

let reset p = p.len <- 0
let length p = p.len
let high_water p = p.high_water

let push p x =
  let n = Array.length p.data in
  if p.len = n then begin
    let data = Array.make (2 * n) p.dummy in
    Array.blit p.data 0 data 0 n;
    p.data <- data
  end;
  p.data.(p.len) <- x;
  p.len <- p.len + 1;
  if p.len > p.high_water then p.high_water <- p.len

let emit p = Array.sub p.data 0 p.len
