type 'a t = { mutable data : 'a array; mutable len : int; dummy : 'a }

let create ?(capacity = 16) dummy =
  { data = Array.make (max capacity 1) dummy; len = 0; dummy }

let reset p = p.len <- 0
let length p = p.len

let push p x =
  let n = Array.length p.data in
  if p.len = n then begin
    let data = Array.make (2 * n) p.dummy in
    Array.blit p.data 0 data 0 n;
    p.data <- data
  end;
  p.data.(p.len) <- x;
  p.len <- p.len + 1

let emit p = Array.sub p.data 0 p.len
