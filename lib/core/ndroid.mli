(** NDroid: the complete analysis (paper, Fig. 4).

    Attaching composes, over one {!Ndroid_runtime.Device}:
    - TaintDroid in the DVM (NDroid "employs it to run apps and track
      information flow in the Java context", Sec. VI);
    - the {!Dvm_hook_engine} (five JNI hook groups + multilevel hooking);
    - the {!Syslib_hook_engine} (Table VI summaries, Table VII sinks);
    - the instruction tracer running {!Insn_taint} (Table V) over
      third-party native code only;
    - the {!Taint_engine} (shadow registers + byte-granularity taint map);
    and installs the two device policies: data entering Java from native
    carries the engine's taint, and a native method's return value carries
    the union of TaintDroid's black-box rule and the tracked taint of
    r0/r1 (plus the returned object's tag). *)

type t

type stats = {
  source_policies : int;  (** SourcePolicy records created *)
  policies_applied : int;
  traced_instructions : int;
  skipped_instructions : int;  (** filtered out (system libs etc.) *)
  summaries_applied : int;
  sink_checks : int;
  multilevel_checks : int;
  tainted_bytes : int;  (** bytes currently tainted in the native map *)
  sb_compiles : int;  (** superblocks translated *)
  sb_hits : int;  (** superblock cache hits (probe or chain) *)
  sb_invalidations : int;  (** stale superblocks retranslated *)
  native_summaries_applied : int;
      (** JNI calls answered from a native taint summary *)
  native_summaries_rejected : int;
      (** JNI calls that fell back from the summary path to emulation *)
  focused_methods : int;
      (** focus-set method/native entries observed (0 without [?focus]) *)
  skipped_bytecodes : int;
      (** bytecodes interpreted before tracking activated — the focused
          run's savings (0 without [?focus]) *)
}

val attach :
  ?use_multilevel:bool ->
  ?use_superblocks:bool ->
  ?use_summaries:bool ->
  ?trace_filter:(int -> bool) ->
  ?obs:Ndroid_obs.Ring.t ->
  ?focus:Ndroid_report.Focus.t ->
  Ndroid_runtime.Device.t ->
  t
(** Instrument a device.  [use_multilevel:false] is ablation A2;
    [use_superblocks] (default [false]) switches native execution to
    pre-decoded superblocks with fused taint transfers — per-instruction
    trace events stop firing, so leave it off when per-insn tracing
    matters; [use_summaries] (default [false]) lets the JNI bridge apply
    digest-cached native taint summaries instead of emulating exact
    function bodies; [trace_filter] overrides which addresses the
    instruction tracer covers (default: the third-party app library region
    only); [obs] supplies the observability hub backing the flow log, the
    device's event stream and provenance reconstruction (default: a fresh
    ring); [focus] (the hybrid pipeline's hand-off) starts the run with
    tracking {e off} and every hook group dormant, ratcheting full
    instrumentation on — permanently — when control first enters a method
    or native function in the set.  An empty focus disables gating. *)

val device : t -> Ndroid_runtime.Device.t
val engine : t -> Taint_engine.t
val log : t -> Flow_log.t
val stats : t -> stats

val leaks : t -> Ndroid_android.Sink_monitor.leak list
(** Everything the device's sink monitor has caught (Java and native
    context). *)

val flow_of_leak : Ndroid_android.Sink_monitor.leak -> Ndroid_report.Flow.t
(** Map one sink-monitor leak onto the unified flow shape ([f_site] is the
    leak's destination detail). *)

val verdict : t -> Ndroid_report.Verdict.t
(** The dynamic run's unified verdict: [Flagged] with one flow per tainted
    leak (deduplicated, sorted), else [Clean].  Same type, same JSON codec
    as the static analyzer's result. *)

val pp_stats : Format.formatter -> stats -> unit
