module Taint = Ndroid_taint.Taint
module Device = Ndroid_runtime.Device
module Machine = Ndroid_emulator.Machine
module Tracer = Ndroid_emulator.Tracer
module Classes = Ndroid_dalvik.Classes
module Taintdroid = Ndroid_taintdroid.Taintdroid

type t = {
  t_device : Device.t;
  t_engine : Taint_engine.t;
  t_log : Flow_log.t;
  dvm_hooks : Dvm_hook_engine.t;
  syslib : Syslib_hook_engine.t;
  tracer : Tracer.t;
  _taintdroid : Taintdroid.t;
}

type stats = {
  source_policies : int;
  policies_applied : int;
  traced_instructions : int;
  skipped_instructions : int;
  summaries_applied : int;
  sink_checks : int;
  multilevel_checks : int;
  tainted_bytes : int;
}

let attach ?(use_multilevel = true) ?trace_filter ?obs device =
  let td = Taintdroid.attach device in
  let engine = Taint_engine.create () in
  (* One ring backs everything: the flow log is a rendering view over it,
     the device (and through it the Dalvik VM and the machine) emits into
     it, and provenance reconstruction reads it back. *)
  let log =
    match obs with
    | Some ring -> Flow_log.of_ring ring
    | None -> Flow_log.create ()
  in
  Device.set_obs device (Flow_log.ring log);
  (* Order matters: the DVM hook engine's listener must run before the
     tracer's so a SourcePolicy initialises the shadow registers before the
     entry instruction's own propagation rule fires. *)
  let dvm_hooks = Dvm_hook_engine.attach ~use_multilevel device engine log in
  let syslib = Syslib_hook_engine.attach device engine log in
  let machine = Device.machine device in
  let cpu = Machine.cpu machine in
  let handler ~addr ~insn = Insn_taint.step engine cpu ~addr insn in
  let tracer = Tracer.attach ?filter:trace_filter ~handler machine in
  (* data entering Java from the native context carries the engine's taint *)
  (Device.native_taint_source device :=
     fun loc ->
       match loc with
       | Device.Loc_reg i -> Taint_engine.reg engine i
       | Device.Loc_mem (addr, len) -> Taint_engine.mem engine addr len
       | Device.Loc_iref iref -> Device.object_taint device ~iref);
  (* the JNI call bridge's return taint: TaintDroid's black-box rule
     unioned with the tracked native taint *)
  (Device.jni_return_policy device :=
     fun jc ~r0 ~r1:_ ->
       let black_box = Taintdroid.return_policy jc ~r0 ~r1:0 in
       let tracked = Taint_engine.reg engine 0 in
       let wide =
         match Classes.return_type jc.Device.jc_method with
         | 'J' | 'D' -> Taint_engine.reg engine 1
         | _ -> Taint.clear
       in
       let obj =
         match Classes.return_type jc.Device.jc_method with
         | 'L' when r0 <> 0 -> Device.object_taint device ~iref:r0
         | _ -> Taint.clear
       in
       Taint.union (Taint.union black_box tracked) (Taint.union wide obj));
  { t_device = device;
    t_engine = engine;
    t_log = log;
    dvm_hooks;
    syslib;
    tracer;
    _taintdroid = td }

let device t = t.t_device
let engine t = t.t_engine
let log t = t.t_log

let stats t =
  { source_policies = Source_policy.Table.size (Dvm_hook_engine.policies t.dvm_hooks);
    policies_applied = Dvm_hook_engine.policies_applied t.dvm_hooks;
    traced_instructions = Tracer.traced t.tracer;
    skipped_instructions = Tracer.skipped t.tracer;
    summaries_applied = Syslib_hook_engine.summaries_applied t.syslib;
    sink_checks = Syslib_hook_engine.sink_checks t.syslib;
    multilevel_checks = Dvm_hook_engine.multilevel_checks t.dvm_hooks;
    tainted_bytes = Taint_engine.tainted_bytes t.t_engine }

let leaks t = Ndroid_android.Sink_monitor.leaks (Device.monitor t.t_device)

let flow_of_leak (l : Ndroid_android.Sink_monitor.leak) =
  { Ndroid_report.Flow.f_taint = l.Ndroid_android.Sink_monitor.taint;
    f_sink = l.Ndroid_android.Sink_monitor.sink;
    f_context =
      (match l.Ndroid_android.Sink_monitor.context with
       | Ndroid_android.Sink_monitor.Java_context -> Ndroid_report.Flow.Java_ctx
       | Ndroid_android.Sink_monitor.Native_context ->
         Ndroid_report.Flow.Native_ctx);
    f_site = l.Ndroid_android.Sink_monitor.detail;
    f_hops = [] }

let verdict t =
  let tainted =
    List.filter
      (fun (l : Ndroid_android.Sink_monitor.leak) ->
        Ndroid_taint.Taint.is_tainted l.Ndroid_android.Sink_monitor.taint)
      (leaks t)
  in
  let ring = Flow_log.ring t.t_log in
  let provenance flow = Ndroid_obs.Provenance.attach ring flow in
  Ndroid_report.Verdict.normalize
    (Ndroid_report.Verdict.Flagged
       (List.map (fun l -> provenance (flow_of_leak l)) tainted))

let pp_stats ppf s =
  Format.fprintf ppf
    "source policies: %d (applied %d); traced insns: %d (skipped %d); summaries: \
     %d; sink checks: %d; multilevel checks: %d; tainted bytes: %d"
    s.source_policies s.policies_applied s.traced_instructions
    s.skipped_instructions s.summaries_applied s.sink_checks s.multilevel_checks
    s.tainted_bytes
