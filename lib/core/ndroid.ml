module Taint = Ndroid_taint.Taint
module Device = Ndroid_runtime.Device
module Machine = Ndroid_emulator.Machine
module Tracer = Ndroid_emulator.Tracer
module Superblock = Ndroid_emulator.Superblock
module Summary = Ndroid_summary.Summary
module Classes = Ndroid_dalvik.Classes
module Vm = Ndroid_dalvik.Vm
module Taintdroid = Ndroid_taintdroid.Taintdroid
module Focus = Ndroid_report.Focus

(* Focused execution (the hybrid pipeline's dynamic half): tracking starts
   disabled and ratchets on — permanently — the first time control enters a
   method or native function on the static slice. *)
type focus_state = {
  fs_active : bool ref;
  fs_methods_hit : int ref;  (* focus-set method entries observed *)
  fs_act_bytecodes : int option ref;
      (* bytecode count at activation; [None] = never activated *)
}

type t = {
  t_device : Device.t;
  t_engine : Taint_engine.t;
  t_log : Flow_log.t;
  dvm_hooks : Dvm_hook_engine.t;
  syslib : Syslib_hook_engine.t;
  tracer : Tracer.t;
  t_focus : focus_state option;
  _taintdroid : Taintdroid.t;
}

type stats = {
  source_policies : int;
  policies_applied : int;
  traced_instructions : int;
  skipped_instructions : int;
  summaries_applied : int;
  sink_checks : int;
  multilevel_checks : int;
  tainted_bytes : int;
  sb_compiles : int;
  sb_hits : int;
  sb_invalidations : int;
  native_summaries_applied : int;
  native_summaries_rejected : int;
  focused_methods : int;
  skipped_bytecodes : int;
}

let attach ?(use_multilevel = true) ?(use_superblocks = false)
    ?(use_summaries = false) ?trace_filter ?obs ?focus device =
  let td = Taintdroid.attach device in
  let engine = Taint_engine.create () in
  let vm = Device.vm device in
  let fstate =
    match focus with
    | Some f when not (Focus.is_empty f) ->
      let meths = Hashtbl.create 64 and nats = Hashtbl.create 64 in
      List.iter (fun m -> Hashtbl.replace meths m ()) f.Focus.methods;
      List.iter (fun s -> Hashtbl.replace nats s ()) f.Focus.natives;
      Some
        ( { fs_active = ref false;
            fs_methods_hit = ref 0;
            fs_act_bytecodes = ref None },
          meths,
          nats )
    | _ -> None
  in
  let gate =
    match fstate with
    | None -> fun () -> true
    | Some (st, _, _) -> fun () -> !(st.fs_active)
  in
  let activate st =
    if not !(st.fs_active) then begin
      st.fs_active := true;
      st.fs_act_bytecodes := Some vm.Vm.counters.Vm.bytecodes;
      vm.Vm.track_taint <- true
    end
  in
  (* Native-side activation: a JNI crossing into a focused native method
     (or a focused method that happens to be native) flips tracking on.
     Registered before the hook engine's listener, so by the time the
     dvmCallJNIMethod hook builds its SourcePolicy the gate is open. *)
  let jni_call_activates st meths nats () =
    if not !(st.fs_active) then
      match Device.current_jni_call device with
      | Some jc ->
        let jm = jc.Device.jc_method in
        let focused =
          Hashtbl.mem meths (Classes.qualified_name jm)
          || (match jm.Classes.m_body with
              | Classes.Native sym -> Hashtbl.mem nats sym
              | _ -> false)
        in
        if focused then begin
          incr st.fs_methods_hit;
          activate st
        end
      | None -> ()
  in
  (match fstate with
   | Some (st, meths, nats) ->
     Machine.add_listener (Device.machine device) (fun ev ->
         match ev with
         | Machine.Ev_host_pre hf when hf.Machine.hf_name = "dvmCallJNIMethod"
           ->
           jni_call_activates st meths nats ()
         | _ -> ())
   | None -> ());
  (* One ring backs everything: the flow log is a rendering view over it,
     the device (and through it the Dalvik VM and the machine) emits into
     it, and provenance reconstruction reads it back. *)
  let log =
    match obs with
    | Some ring -> Flow_log.of_ring ring
    | None -> Flow_log.create ()
  in
  Device.set_obs device (Flow_log.ring log);
  (* Order matters: the DVM hook engine's listener must run before the
     tracer's so a SourcePolicy initialises the shadow registers before the
     entry instruction's own propagation rule fires. *)
  let dvm_hooks =
    Dvm_hook_engine.attach ~use_multilevel ~gate device engine log
  in
  let syslib = Syslib_hook_engine.attach device engine log in
  (* Java-side activation: the interpreter's invoke hook fires before the
     callee captures [track_taint], so a focused method runs fully
     tracked from its first bytecode. *)
  (match fstate with
   | Some (st, meths, _) ->
     let prev = vm.Vm.on_invoke in
     vm.Vm.on_invoke <-
       Some
         (fun jm ->
           if Hashtbl.mem meths (Classes.qualified_name jm) then begin
             incr st.fs_methods_hit;
             activate st
           end;
           match prev with Some f -> f jm | None -> ())
   | None -> ());
  let machine = Device.machine device in
  let cpu = Machine.cpu machine in
  let handler ~addr ~insn =
    if gate () then Insn_taint.step engine cpu ~addr insn
  in
  let tracer = Tracer.attach ?filter:trace_filter ~handler machine in
  (* Superblock execution replaces the per-instruction trace loop: taint
     propagation moves into the blocks' fused/per-slot micro-ops, and the
     source-policy hook moves from every instruction to every block entry
     (policy addresses always start a block, and a policy at a new address
     flushes the block cache). *)
  if use_superblocks then begin
    let table = Dvm_hook_engine.policies dvm_hooks in
    ignore
      (Machine.enable_superblocks ~engine
         ~on_block_entry:(fun addr ->
           if gate () then Dvm_hook_engine.on_insn dvm_hooks ~addr)
         ~is_boundary:(fun addr -> Source_policy.Table.mem table addr)
         ~ring:(Flow_log.ring log) machine
        : Superblock.t)
  end;
  (* The summary fast path skips the dvmCallJNIMethod bridge, so the JNI-
     entry hook and the entry policy application run from here instead;
     the fused masks then land the body's whole taint effect at once. *)
  if use_summaries then begin
    Device.set_use_summaries device true;
    Device.set_summary_taint device (fun entry masks ->
        (* the summary fast path never enters the bridge, so the native
           activation listener can't see the crossing — check it here *)
        (match fstate with
         | Some (st, meths, nats) -> jni_call_activates st meths nats ()
         | None -> ());
        if gate () then begin
          Dvm_hook_engine.on_jni_enter dvm_hooks;
          Dvm_hook_engine.on_insn dvm_hooks ~addr:entry;
          Summary.apply_masks engine masks
        end)
  end;
  (* data entering Java from the native context carries the engine's taint *)
  (Device.native_taint_source device :=
     fun loc ->
       match loc with
       | Device.Loc_reg i -> Taint_engine.reg engine i
       | Device.Loc_mem (addr, len) -> Taint_engine.mem engine addr len
       | Device.Loc_iref iref -> Device.object_taint device ~iref);
  (* the JNI call bridge's return taint: TaintDroid's black-box rule
     unioned with the tracked native taint *)
  (Device.jni_return_policy device :=
     fun jc ~r0 ~r1:_ ->
       let black_box = Taintdroid.return_policy jc ~r0 ~r1:0 in
       let tracked = Taint_engine.reg engine 0 in
       let wide =
         match Classes.return_type jc.Device.jc_method with
         | 'J' | 'D' -> Taint_engine.reg engine 1
         | _ -> Taint.clear
       in
       let obj =
         match Classes.return_type jc.Device.jc_method with
         | 'L' when r0 <> 0 -> Device.object_taint device ~iref:r0
         | _ -> Taint.clear
       in
       Taint.union (Taint.union black_box tracked) (Taint.union wide obj));
  (* Taintdroid.attach switched full tracking on; with a focus set the run
     starts dark and the ratchet above lights it up. *)
  (match fstate with
   | Some (st, _, _) when not !(st.fs_active) -> vm.Vm.track_taint <- false
   | _ -> ());
  { t_device = device;
    t_engine = engine;
    t_log = log;
    dvm_hooks;
    syslib;
    tracer;
    t_focus = Option.map (fun (st, _, _) -> st) fstate;
    _taintdroid = td }

let device t = t.t_device
let engine t = t.t_engine
let log t = t.t_log

let stats t =
  let sb = Machine.superblocks (Device.machine t.t_device) in
  let sb_stat f = match sb with Some s -> f s | None -> 0 in
  { source_policies = Source_policy.Table.size (Dvm_hook_engine.policies t.dvm_hooks);
    policies_applied = Dvm_hook_engine.policies_applied t.dvm_hooks;
    traced_instructions = Tracer.traced t.tracer;
    skipped_instructions = Tracer.skipped t.tracer;
    summaries_applied = Syslib_hook_engine.summaries_applied t.syslib;
    sink_checks = Syslib_hook_engine.sink_checks t.syslib;
    multilevel_checks = Dvm_hook_engine.multilevel_checks t.dvm_hooks;
    tainted_bytes = Taint_engine.tainted_bytes t.t_engine;
    sb_compiles = sb_stat Superblock.compiles;
    sb_hits = sb_stat Superblock.hits;
    sb_invalidations = sb_stat Superblock.invalidations;
    native_summaries_applied = Device.summaries_applied t.t_device;
    native_summaries_rejected = Device.summaries_rejected t.t_device;
    focused_methods =
      (match t.t_focus with Some st -> !(st.fs_methods_hit) | None -> 0);
    skipped_bytecodes =
      (match t.t_focus with
       | Some st -> (
         match !(st.fs_act_bytecodes) with
         | Some at_activation -> at_activation
         | None -> (Device.vm t.t_device).Vm.counters.Vm.bytecodes)
       | None -> 0) }

let leaks t = Ndroid_android.Sink_monitor.leaks (Device.monitor t.t_device)

let flow_of_leak (l : Ndroid_android.Sink_monitor.leak) =
  { Ndroid_report.Flow.f_taint = l.Ndroid_android.Sink_monitor.taint;
    f_sink = l.Ndroid_android.Sink_monitor.sink;
    f_context =
      (match l.Ndroid_android.Sink_monitor.context with
       | Ndroid_android.Sink_monitor.Java_context -> Ndroid_report.Flow.Java_ctx
       | Ndroid_android.Sink_monitor.Native_context ->
         Ndroid_report.Flow.Native_ctx);
    f_site = l.Ndroid_android.Sink_monitor.detail;
    f_hops = [] }

let verdict t =
  let tainted =
    List.filter
      (fun (l : Ndroid_android.Sink_monitor.leak) ->
        Ndroid_taint.Taint.is_tainted l.Ndroid_android.Sink_monitor.taint)
      (leaks t)
  in
  let ring = Flow_log.ring t.t_log in
  let provenance flow = Ndroid_obs.Provenance.attach ring flow in
  Ndroid_report.Verdict.normalize
    (Ndroid_report.Verdict.Flagged
       (List.map (fun l -> provenance (flow_of_leak l)) tainted))

let pp_stats ppf s =
  Format.fprintf ppf
    "source policies: %d (applied %d); traced insns: %d (skipped %d); summaries: \
     %d; sink checks: %d; multilevel checks: %d; tainted bytes: %d; superblocks: \
     %d compiled (%d hits, %d invalidated); native summaries: %d applied (%d \
     rejected); focused methods: %d; skipped bytecodes: %d"
    s.source_policies s.policies_applied s.traced_instructions
    s.skipped_instructions s.summaries_applied s.sink_checks s.multilevel_checks
    s.tainted_bytes s.sb_compiles s.sb_hits s.sb_invalidations
    s.native_summaries_applied s.native_summaries_rejected s.focused_methods
    s.skipped_bytecodes
