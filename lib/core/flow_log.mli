(** Structured flow log.

    NDroid's output in the paper is a log of the functions on an
    information flow (Figs. 6-9: SourcePolicy firings, JNI function
    begin/end markers, taint assignments like [t(412a3320) := 0x202], sink
    handler reports).  The engines append here; the case-study experiments
    print it.

    Since the observability rework the log is a view over an
    {!Ndroid_obs.Ring}: engines emit typed events and this module renders
    the renderable ones back to the legacy line format on demand.  [count]
    and [entries] cover exactly the renderable events, so existing
    substring-based assertions keep holding. *)

type t = Ndroid_obs.Ring.t

val create : unit -> t

val ring : t -> Ndroid_obs.Ring.t
(** The underlying observability hub (the identity — the log {e is} the
    ring). *)

val of_ring : Ndroid_obs.Ring.t -> t

val record : t -> string -> unit
val recordf : t -> ('a, Format.formatter, unit, unit) format4 -> 'a

val entries : t -> string list
(** Oldest first; renderable events only, at most the ring capacity. *)

val clear : t -> unit

val count : t -> int
(** Renderable events ever recorded (survives ring wraparound). *)

val contains : string -> string -> bool
(** [contains hay needle] — substring test shared with the harness. *)

val matching : t -> string -> string list
(** Entries containing a substring. *)
