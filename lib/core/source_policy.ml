module Taint = Ndroid_taint.Taint
module Device = Ndroid_runtime.Device
module Classes = Ndroid_dalvik.Classes
module Cpu = Ndroid_arm.Cpu

type t = {
  method_address : int;
  t_r0 : Taint.t;
  t_r1 : Taint.t;
  t_r2 : Taint.t;
  t_r3 : Taint.t;
  stack_args_num : int;
  stack_args_taints : Taint.t array;
  method_shorty : string;
  access_flag : int;
  method_name : string;
  class_name : string;
}

let of_jni_call (jc : Device.jni_call) =
  let slot i =
    if i < Array.length jc.Device.jc_slots then snd jc.Device.jc_slots.(i)
    else Taint.clear
  in
  let n_slots = Array.length jc.Device.jc_slots in
  let stack_args_num = max 0 (n_slots - 4) in
  let jm = jc.Device.jc_method in
  { method_address = jc.Device.jc_addr;
    t_r0 = slot 0;
    t_r1 = slot 1;
    t_r2 = slot 2;
    t_r3 = slot 3;
    stack_args_num;
    stack_args_taints = Array.init stack_args_num (fun i -> slot (4 + i));
    method_shorty = jm.Classes.m_shorty;
    access_flag = (if jm.Classes.m_static then 0x8 else 0x0) lor 0x1;
    method_name = jm.Classes.m_name;
    class_name = jm.Classes.m_class }

let apply p engine cpu =
  Taint_engine.set_reg engine 0 p.t_r0;
  Taint_engine.set_reg engine 1 p.t_r1;
  Taint_engine.set_reg engine 2 p.t_r2;
  Taint_engine.set_reg engine 3 p.t_r3;
  let sp = Cpu.sp cpu in
  Array.iteri
    (fun i tag -> Taint_engine.set_mem engine (sp + (4 * i)) 4 tag)
    p.stack_args_taints

let any_tainted p =
  Taint.is_tainted p.t_r0 || Taint.is_tainted p.t_r1 || Taint.is_tainted p.t_r2
  || Taint.is_tainted p.t_r3
  || Array.exists Taint.is_tainted p.stack_args_taints

module Table = struct
  type policy = t

  (* Keyed by method address.  The registered-address bounds let the
     per-instruction lookup in the trace loop reject almost every address
     with two compares instead of a hashtable probe. *)
  type nonrec t = {
    tbl : (int, policy) Hashtbl.t;
    mutable lo : int;
    mutable hi : int;
  }

  let create () : t = { tbl = Hashtbl.create 32; lo = max_int; hi = min_int }

  let add table p =
    Hashtbl.replace table.tbl p.method_address p;
    if p.method_address < table.lo then table.lo <- p.method_address;
    if p.method_address > table.hi then table.hi <- p.method_address

  let find table addr =
    if addr < table.lo || addr > table.hi then None
    else Hashtbl.find_opt table.tbl addr

  let mem table addr =
    addr >= table.lo && addr <= table.hi && Hashtbl.mem table.tbl addr

  let size table = Hashtbl.length table.tbl
end

let pp ppf p =
  Format.fprintf ppf
    "SourcePolicy{%s->%s shorty=%s addr=0x%x tR0=%a tR1=%a tR2=%a tR3=%a stack=%d}"
    p.class_name p.method_name p.method_shorty p.method_address Taint.pp p.t_r0
    Taint.pp p.t_r1 Taint.pp p.t_r2 Taint.pp p.t_r3 p.stack_args_num
