(** Analysis report.

    Renders everything an attached NDroid instance learned about one app
    run — the verdict, each leak with its taint categories, the source
    policies that fired, the engine statistics, and the flow log — as the
    kind of triage report an analyst (or the paper's Sec. VI evaluation)
    works from.  Machine-readable output goes through the unified
    {!Ndroid_report.Verdict} codec, identical in shape to the static
    analyzer's reports. *)

val to_report : ?app_name:string -> Ndroid.t -> Ndroid_report.Verdict.report
(** The unified per-app report (analysis = ["dynamic"]): the run's
    {!Ndroid.verdict} plus engine counters as deterministic metadata. *)

val json : ?app_name:string -> Ndroid.t -> string
(** {!to_report} in canonical JSON. *)

val generate :
  ?app_name:string ->
  ?transmissions:Ndroid_android.Network.transmission list ->
  ?file_writes:Ndroid_android.Filesystem.write_record list ->
  Ndroid.t ->
  string

val print :
  ?app_name:string ->
  ?transmissions:Ndroid_android.Network.transmission list ->
  ?file_writes:Ndroid_android.Filesystem.write_record list ->
  Ndroid.t ->
  unit
(** {!generate} to stdout. *)
