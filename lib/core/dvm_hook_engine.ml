module Taint = Ndroid_taint.Taint
module Device = Ndroid_runtime.Device
module Machine = Ndroid_emulator.Machine
module Layout = Ndroid_emulator.Layout
module Multilevel = Ndroid_emulator.Multilevel
module Cpu = Ndroid_arm.Cpu
module Memory = Ndroid_arm.Memory
module Vm = Ndroid_dalvik.Vm
module Classes = Ndroid_dalvik.Classes
module A = Ndroid_android
module Ring = Ndroid_obs.Ring

type frame_snapshot = { fs_name : string; fs_regs : int array }

type t = {
  device : Device.t;
  engine : Taint_engine.t;
  log : Flow_log.t;
  table : Source_policy.Table.t;
  multilevel : Multilevel.t;
  use_multilevel : bool;
  mutable pre_stack : frame_snapshot list;
  mutable policies_applied : int;
  mutable always_hook_scans : int;
}

let policies t = t.table
let policies_applied t = t.policies_applied
let multilevel_checks t = Multilevel.checks t.multilevel
let multilevel_level t = Multilevel.level t.multilevel
let always_hook_scans t = t.always_hook_scans

(* ---- helpers ---- *)

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let ends_with ~suffix s =
  String.length s >= String.length suffix
  && String.sub s (String.length s - String.length suffix) (String.length suffix)
     = suffix

(* Call<Type>Method... wrappers: extract the return-type name. *)
let call_method_type name =
  let strip_prefix p s =
    if starts_with ~prefix:p s then
      Some (String.sub s (String.length p) (String.length s - String.length p))
    else None
  in
  let rest =
    match strip_prefix "CallNonvirtual" name with
    | Some r -> Some r
    | None -> (
      match strip_prefix "CallStatic" name with
      | Some r -> Some r
      | None -> strip_prefix "Call" name)
  in
  match rest with
  | None -> None
  | Some r ->
    let r =
      if ends_with ~suffix:"MethodV" r || ends_with ~suffix:"MethodA" r then
        String.sub r 0 (String.length r - 7)
      else if ends_with ~suffix:"Method" r then
        String.sub r 0 (String.length r - 6)
      else r
    in
    if r = "" then None else Some r

let field_access name =
  (* Get/Set[Static]<Type>Field *)
  if not (ends_with ~suffix:"Field" name) then None
  else if starts_with ~prefix:"GetStatic" name then Some (`Get, true)
  else if starts_with ~prefix:"SetStatic" name then Some (`Set, true)
  else if starts_with ~prefix:"Get" name then Some (`Get, false)
  else if starts_with ~prefix:"Set" name then Some (`Set, false)
  else None

let array_elements name =
  if not (ends_with ~suffix:"ArrayElements" name) then None
  else if starts_with ~prefix:"Get" name then Some `Get
  else if starts_with ~prefix:"Release" name then Some `Release
  else None

let array_region name =
  if not (ends_with ~suffix:"ArrayRegion" name) then None
  else if starts_with ~prefix:"Get" name then Some `Get
  else if starts_with ~prefix:"Set" name then Some `Set
  else None

let region_width name =
  if starts_with ~prefix:"GetLong" name || starts_with ~prefix:"SetLong" name
     || starts_with ~prefix:"GetDouble" name
     || starts_with ~prefix:"SetDouble" name
  then 8
  else 4

let elem_width name =
  if starts_with ~prefix:"GetLong" name || starts_with ~prefix:"ReleaseLong" name
     || starts_with ~prefix:"GetDouble" name
     || starts_with ~prefix:"ReleaseDouble" name
  then 8
  else 4

(* ---- event handling ---- *)

(* JNI entry (hook group 1): build the SourcePolicy for the in-flight call.
   Shared between the dvmCallJNIMethod host-function hook (emulated path)
   and the summary fast path, which skips the bridge but must produce the
   same policy state and log lines. *)
let on_jni_enter t =
  match Device.current_jni_call t.device with
  | Some jc ->
    let p = Source_policy.of_jni_call jc in
    Flow_log.recordf t.log "name: %s" p.Source_policy.method_name;
    Flow_log.recordf t.log "shorty: %s" p.Source_policy.method_shorty;
    Flow_log.recordf t.log "class: %s" p.Source_policy.class_name;
    Array.iteri
      (fun i (v, tag) ->
        if Taint.is_tainted tag then
          Ring.emit_arg_taint t.log ~idx:i
            ~value:(Ndroid_dalvik.Dvalue.to_string v)
            ~taint:(Taint.to_bits tag))
      jc.Device.jc_args;
    if Source_policy.any_tainted p then begin
      (* a policy at a *new* address changes where blocks must end, so any
         cached superblock translation may now run through a policy entry *)
      if not (Source_policy.Table.mem t.table p.Source_policy.method_address)
      then (
        match Machine.superblocks (Device.machine t.device) with
        | Some sb -> Ndroid_emulator.Superblock.flush sb
        | None -> ());
      Source_policy.Table.add t.table p;
      let arg_taint =
        Array.fold_left
          (fun acc tag -> acc lor Taint.to_bits tag)
          (List.fold_left
             (fun acc tag -> acc lor Taint.to_bits tag)
             0
             [ p.Source_policy.t_r0; p.Source_policy.t_r1;
               p.Source_policy.t_r2; p.Source_policy.t_r3 ])
          p.Source_policy.stack_args_taints
      in
      Ring.emit_source t.log ~name:p.Source_policy.method_name
        ~cls:p.Source_policy.class_name
        ~addr:p.Source_policy.method_address ~taint:arg_taint
    end
  | None -> ()

let on_host_pre t (hf : Machine.host_fn) =
  let cpu = Machine.cpu (Device.machine t.device) in
  let name = hf.Machine.hf_name in
  t.pre_stack <-
    { fs_name = name; fs_regs = Array.copy cpu.Cpu.regs } :: t.pre_stack;
  match name with
  | "dvmCallJNIMethod" -> on_jni_enter t
  | "dvmInterpret" -> (
    (* Fig. 9: log the frame about to be interpreted and the taints NDroid
       injects into its slots. *)
    match Device.pending_interp_args t.device with
    | Some (args, jm) ->
      Flow_log.recordf t.log "dvmInterpret Begin";
      Flow_log.recordf t.log "Method Name: %s" jm.Classes.m_name;
      Flow_log.recordf t.log "Method Shorty: %s" jm.Classes.m_shorty;
      Array.iteri
        (fun i (_, tag) ->
          if Taint.is_tainted tag then begin
            Flow_log.recordf t.log "args[%d] taint: %a" i Taint.pp tag;
            Flow_log.recordf t.log "add taint to new method frame"
          end)
        args
    | None -> ())
  | "SetObjectArrayElement" -> (
    let arr = Cpu.reg cpu 1 and v = Cpu.reg cpu 3 in
    let tag =
      Taint.union (Taint_engine.reg t.engine 3)
        (Device.object_taint t.device ~iref:v)
    in
    if Taint.is_tainted tag then Device.add_object_taint t.device ~iref:arr tag)
  | _ -> (
    match field_access name with
    | Some (`Set, _static) ->
      (* value is argument 3; objects contribute their own tag *)
      let fid = Cpu.reg cpu 2 and obj_iref = Cpu.reg cpu 1 in
      let raw = Cpu.reg cpu 3 in
      let tag =
        Taint.union (Taint_engine.reg t.engine 3)
          (Device.object_taint t.device ~iref:raw)
      in
      if Taint.is_tainted tag then begin
        Device.add_field_taint t.device ~obj_iref ~fid tag;
        Flow_log.recordf t.log "TrustCallHandler[%s]: field taint := %a" name
          Taint.pp tag
      end
    | Some (`Get, _) | None -> (
      match array_elements name with
      | Some `Release ->
        let arr = Cpu.reg cpu 1 and buf = Cpu.reg cpu 2 and mode = Cpu.reg cpu 3 in
        if mode <> 2 then (
          match Device.array_length t.device ~iref:arr with
          | Some len ->
            let tag = Taint_engine.mem t.engine buf (len * elem_width name) in
            if Taint.is_tainted tag then
              Device.add_object_taint t.device ~iref:arr tag
          | None -> ())
      | Some `Get | None -> (
        match array_region name with
        | Some `Set ->
          (* native buffer contents flow into the Java array *)
          let machine = Device.machine t.device in
          let mem = Machine.mem machine in
          let arr = Cpu.reg cpu 1
          and len = Cpu.reg cpu 3
          and buf = A.Libc_model.arg cpu mem 4 in
          let tag = Taint_engine.mem t.engine buf (len * region_width name) in
          if Taint.is_tainted tag then
            Device.add_object_taint t.device ~iref:arr tag
        | Some `Get | None -> ())))

let wide_return ty = ty = "Long" || ty = "Double"

let on_host_post t (hf : Machine.host_fn) =
  let machine = Device.machine t.device in
  let cpu = Machine.cpu machine in
  let mem = Machine.mem machine in
  let name = hf.Machine.hf_name in
  let pre =
    match t.pre_stack with
    | top :: rest when top.fs_name = name ->
      t.pre_stack <- rest;
      Some top.fs_regs
    | _ -> None
  in
  let pre_reg i = match pre with Some regs -> regs.(i) | None -> Cpu.reg cpu i in
  (match call_method_type name with
   | Some ty ->
     (* JNI exit: Java's return taint enters the native shadow registers. *)
     let _, ret_taint = (Device.vm t.device).Vm.ret in
     Taint_engine.set_reg t.engine 0 ret_taint;
     if wide_return ty then Taint_engine.set_reg t.engine 1 ret_taint;
     if Taint.is_tainted ret_taint then
       Ring.emit_jni_ret t.log ~name ~taint:(Taint.to_bits ret_taint)
   | None -> ());
  match name with
  | "NewStringUTF" ->
    let cstr = pre_reg 1 in
    let s = Memory.read_cstring mem cstr in
    let tag =
      Taint.union
        (Taint_engine.mem t.engine cstr (String.length s + 1))
        (Taint_engine.reg t.engine 1)
    in
    let iref = Cpu.reg cpu 0 in
    if Taint.is_tainted tag then begin
      Device.add_object_taint t.device ~iref tag;
      (match Device.object_addr t.device ~iref with
       | Some addr ->
         Flow_log.recordf t.log "realStringAddr:0x%x" addr;
         Flow_log.recordf t.log "add taint %a to new string object@0x%x" Taint.pp
           tag addr;
         Ring.emit_taint_mem t.log ~addr ~taint:(Taint.to_bits tag)
       | None -> ());
      Flow_log.recordf t.log "NewStringUTF return 0x%x" iref
    end
  | "NewString" ->
    let ptr = pre_reg 1 and len = pre_reg 2 in
    let tag =
      Taint.union (Taint_engine.mem t.engine ptr (2 * len))
        (Taint_engine.reg t.engine 1)
    in
    let iref = Cpu.reg cpu 0 in
    if Taint.is_tainted tag then Device.add_object_taint t.device ~iref tag
  | "dvmCreateStringFromCstr" ->
    let s = Memory.read_cstring mem (pre_reg 1) in
    Flow_log.recordf t.log "dvmCreateStringFromCstr Begin";
    Flow_log.recordf t.log "%s" s;
    Flow_log.recordf t.log "dvmCreateStringFromCstr return 0x%x" (Cpu.reg cpu 0)
  | "GetStringUTFChars" ->
    let jstring = pre_reg 1 in
    let buf = Cpu.reg cpu 0 in
    if buf <> 0 then begin
      let s = Memory.read_cstring mem buf in
      let tag = Device.object_taint t.device ~iref:jstring in
      Flow_log.recordf t.log "TrustCallHandler[GetStringUTFChars] begin";
      if Taint.is_tainted tag then begin
        Taint_engine.add_mem t.engine buf (String.length s + 1) tag;
        Taint_engine.set_reg t.engine 0 tag;
        Flow_log.recordf t.log "jstring taint:%a" Taint.pp tag;
        Ring.emit_taint_mem t.log ~addr:buf ~taint:(Taint.to_bits tag)
      end;
      Flow_log.recordf t.log "TrustCallHandler[GetStringUTFChars] end"
    end
  | "GetStringChars" ->
    let jstring = pre_reg 1 in
    let buf = Cpu.reg cpu 0 in
    (match Device.array_length t.device ~iref:jstring with
     | Some len when buf <> 0 ->
       let tag = Device.object_taint t.device ~iref:jstring in
       if Taint.is_tainted tag then begin
         Taint_engine.add_mem t.engine buf ((2 * len) + 2) tag;
         Taint_engine.set_reg t.engine 0 tag
       end
     | Some _ | None -> ())
  | "GetStringUTFLength" | "GetStringLength" | "GetArrayLength" ->
    Taint_engine.set_reg t.engine 0 (Device.object_taint t.device ~iref:(pre_reg 1))
  | "GetObjectArrayElement" ->
    let arr_tag = Device.object_taint t.device ~iref:(pre_reg 1) in
    let elem = Cpu.reg cpu 0 in
    Taint_engine.set_reg t.engine 0 arr_tag;
    if elem <> 0 && Taint.is_tainted arr_tag then
      Device.add_object_taint t.device ~iref:elem arr_tag
  | "ThrowNew" ->
    Flow_log.recordf t.log "ThrowNew: exception carries native taint"
  | "GetStringUTFRegion" | "GetStringRegion" ->
    (* Java string chars landed in a native buffer (arg 4, on the stack) *)
    let jstring = pre_reg 1 and len = pre_reg 3 in
    let buf = Memory.read_u32 mem (pre_reg 13) in
    let tag = Device.object_taint t.device ~iref:jstring in
    let width = if name = "GetStringRegion" then 2 else 1 in
    if Taint.is_tainted tag && len > 0 then
      Taint_engine.add_mem t.engine buf ((len * width) + 1) tag
  | _ -> (
    match field_access name with
    | Some (`Get, _static) ->
      let fid = pre_reg 2 and obj_iref = pre_reg 1 in
      let tag = Device.field_taint t.device ~obj_iref ~fid in
      Taint_engine.set_reg t.engine 0 tag;
      if Taint.is_tainted tag then
        Flow_log.recordf t.log "TrustCallHandler[%s]: t(r0) := %a" name Taint.pp tag
    | Some (`Set, _) | None -> (
      match array_elements name with
      | Some `Get ->
        let arr = pre_reg 1 in
        let buf = Cpu.reg cpu 0 in
        (match Device.array_length t.device ~iref:arr with
         | Some len when buf <> 0 ->
           let tag = Device.object_taint t.device ~iref:arr in
           if Taint.is_tainted tag then
             Taint_engine.add_mem t.engine buf (len * elem_width name) tag
         | Some _ | None -> ())
      | Some `Release | None -> (
        match array_region name with
        | Some `Get ->
          (* Java array contents landed in a native buffer *)
          let arr = pre_reg 1 and len = pre_reg 3 in
          let buf = Memory.read_u32 mem (pre_reg 13) in
          let tag = Device.object_taint t.device ~iref:arr in
          if Taint.is_tainted tag && len > 0 then
            Taint_engine.add_mem t.engine buf (len * region_width name) tag
        | Some `Set | None -> ())))

let on_insn t ~addr =
  match Source_policy.Table.find t.table addr with
  | Some p ->
    let cpu = Machine.cpu (Device.machine t.device) in
    Source_policy.apply p t.engine cpu;
    t.policies_applied <- t.policies_applied + 1;
    Ring.emit_policy_apply t.log ~addr;
    List.iter
      (fun (tag, r) ->
        if Taint.is_tainted tag then
          Ring.emit_taint_reg t.log ~reg:r ~taint:(Taint.to_bits tag))
      [ (p.Source_policy.t_r0, 0); (p.Source_policy.t_r1, 1);
        (p.Source_policy.t_r2, 2); (p.Source_policy.t_r3, 3) ]
  | None -> ()

let attach ?(use_multilevel = true) ?(gate = fun () -> true) device engine log =
  let machine = Device.machine device in
  let call_entry =
    let cache = Hashtbl.create 512 in
    fun addr ->
      match Hashtbl.find_opt cache addr with
      | Some b -> b
      | None ->
        let b =
          match Machine.find_host_fn machine addr with
          | Some hf -> call_method_type hf.Machine.hf_name <> None
          | None -> false
        in
        Hashtbl.replace cache addr b;
        b
  in
  let dvm_call_method addr =
    match Machine.find_host_fn machine addr with
    | Some hf -> starts_with ~prefix:"dvmCallMethod" hf.Machine.hf_name
    | None -> false
  in
  let interpret_addr =
    try Machine.host_fn_addr machine "dvmInterpret" with Not_found -> -1
  in
  let multilevel =
    Multilevel.create
      ~chain:[ call_entry; dvm_call_method; Multilevel.exact interpret_addr ]
      ~in_native:Layout.in_app_lib
  in
  let t =
    { device;
      engine;
      log;
      table = Source_policy.Table.create ();
      multilevel;
      use_multilevel;
      pre_stack = [];
      policies_applied = 0;
      always_hook_scans = 0 }
  in
  if not use_multilevel then
    (* Ablation A2: hook every interpreter entry instead of only the ones a
       native-originated chain reaches. *)
    (Device.vm device).Vm.on_invoke <-
      Some
        (fun jm ->
          if not (gate ()) then ()
          else begin
          t.always_hook_scans <- t.always_hook_scans + 1;
          (* the scan the hook would do: inspect each would-be argument
             slot of the frame *)
          let n = Classes.ins_count jm in
          for i = 0 to n - 1 do
            ignore (Taint_engine.reg t.engine (i land 15))
          done
          end);
  (* [gate] is the focused-execution switch: while it returns [false] every
     hook group stays dormant, so unfocused code pays no instrumentation. *)
  Machine.add_listener machine (fun ev ->
      if gate () then
        match ev with
        | Machine.Ev_host_pre hf when hf.Machine.hf_lib = "libdvm.so" ->
          on_host_pre t hf
        | Machine.Ev_host_post hf when hf.Machine.hf_lib = "libdvm.so" ->
          on_host_post t hf
        | Machine.Ev_host_pre _ | Machine.Ev_host_post _ -> ()
        | Machine.Ev_insn { addr; _ } -> on_insn t ~addr
        | Machine.Ev_branch { from_; to_; _ } ->
          if t.use_multilevel then
            ignore (Multilevel.observe t.multilevel ~from_ ~to_)
        | Machine.Ev_svc _ -> ());
  t
