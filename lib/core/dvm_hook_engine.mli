(** The DVM hook engine: NDroid's five hook groups (paper, Sec. V-B).

    1. {b JNI entry} — hooks [dvmCallJNIMethod] to build a {!Source_policy}
       and applies it when the native method's first instruction executes.
    2. {b JNI exit} — hooks the [Call*Method*] families (Table II): argument
       taints flow into the frame [dvmInterpret] is about to run (through
       the device's [native_taint_source] query), and the Java return
       value's taint flows back into shadow r0/r1.
    3. {b Object creation} — hooks the NOF/MAF pairs of Table III:
       [NewStringUTF] propagates the C buffer's byte taints onto the new
       String object (keyed by indirect reference, so GC moves are safe).
    4. {b Field access} — hooks Table IV's [Get/Set*Field].
    5. {b Exception} — [ThrowNew]'s message taint lands on the exception
       object (the device performs the write; we log it).

    The engine also runs the multilevel-hooking tracker (Fig. 5) over the
    branch stream, and — in the always-hook ablation — instruments every
    [dvmInterpret] entry instead. *)

type t

val attach :
  ?use_multilevel:bool ->
  ?gate:(unit -> bool) ->
  Ndroid_runtime.Device.t ->
  Taint_engine.t ->
  Flow_log.t ->
  t
(** Wire the engine into the device's machine.  [use_multilevel] defaults
    to [true]; [false] is ablation A2 (instrument every interpreter
    entry).  [gate] (default: always on) is the focused-execution switch:
    while it returns [false] the listener ignores every machine event, so
    code outside the static focus set runs uninstrumented. *)

val policies : t -> Source_policy.Table.t
val on_jni_enter : t -> unit
(** Run the JNI-entry hook (SourcePolicy construction + registration) for
    the device's in-flight JNI call.  Fired by the [dvmCallJNIMethod] hook
    on the emulated path; the summary fast path calls it directly since it
    never enters the bridge. *)

val on_insn : t -> addr:int -> unit
(** Apply the source policy registered at [addr], if any.  This is the
    per-instruction hook on the tracing path and the block-entry hook on
    the superblock path. *)

val policies_applied : t -> int
(** How many times a SourcePolicy initialised a native frame. *)

val multilevel_checks : t -> int
(** Branch events the multilevel tracker inspected. *)

val multilevel_level : t -> int
(** Current chain depth (for tests). *)

val always_hook_scans : t -> int
(** dvmInterpret-entry scans performed in always-hook mode. *)
