(* The engine proper now lives in the emulator layer so the superblock
   translator can fuse Table V transfers at translate time; this alias keeps
   the historical [Ndroid_core.Taint_engine] path working. *)
include Ndroid_emulator.Taint_engine
