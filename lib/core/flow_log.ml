module Ring = Ndroid_obs.Ring
module Event = Ndroid_obs.Event

(* The flow log is a string-rendering view over the observability ring:
   engines emit typed events, and the legacy line-oriented API renders
   them on demand through [Event.render] — the single home of the paper's
   log vocabulary.  Events with no legacy spelling (method spans, machine
   instructions, pipeline phases) render to [None] and are invisible
   here. *)
type t = Ring.t

let create () = Ring.create ()
let ring t = t
let of_ring r = r

let record t line = Ring.emit_log t line
let recordf t fmt = Format.kasprintf (record t) fmt

let entries t =
  List.rev
    (Ring.fold
       (fun acc r ->
         match Event.render r with Some line -> line :: acc | None -> acc)
       [] t)

let clear t = Ring.clear t
let count t = Ring.lines t

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  if nl = 0 then true
  else
    let rec loop i =
      if i + nl > hl then false
      else if String.sub hay i nl = needle then true
      else loop (i + 1)
    in
    loop 0

let matching t needle = List.filter (fun e -> contains e needle) (entries t)
