module Taint = Ndroid_taint.Taint
module Device = Ndroid_runtime.Device
module Machine = Ndroid_emulator.Machine
module Cpu = Ndroid_arm.Cpu
module Memory = Ndroid_arm.Memory
module A = Ndroid_android
module Ring = Ndroid_obs.Ring

type t = {
  device : Device.t;
  engine : Taint_engine.t;
  log : Flow_log.t;
  mutable pre_regs : (string * int array) list;
  mutable pending_free : (int * int) option;  (* realloc: old ptr, old size *)
  mutable summaries : int;
  mutable sink_checks : int;
}

let summaries_applied t = t.summaries
let sink_checks t = t.sink_checks

let cstr_len mem addr = String.length (Memory.read_cstring mem addr) + 1

let note t = t.summaries <- t.summaries + 1

(* Union of the taints a printf-family call consumes: the format string's
   bytes, each %s argument's bytes, each numeric vararg's shadow slot. *)
let printf_taint t cpu mem ~fmt ~first =
  let rendered, varargs = A.Libc_model.format_args mem cpu ~fmt ~first in
  let tag = ref (Taint_engine.mem t.engine fmt (cstr_len mem fmt)) in
  List.iteri
    (fun i va ->
      let slot = first + i in
      let slot_taint =
        if slot < 4 then Taint_engine.reg t.engine slot
        else Taint_engine.mem t.engine (Cpu.sp cpu + (4 * (slot - 4))) 4
      in
      tag := Taint.union !tag slot_taint;
      match va with
      | A.Libc_model.Str { addr; value } ->
        let st = Taint_engine.mem t.engine addr (String.length value + 1) in
        if Taint.is_tainted st then begin
          Flow_log.recordf t.log "t[%x] = %a" addr Taint.pp st;
          Flow_log.recordf t.log "write: %s" value
        end;
        tag := Taint.union !tag st
      | A.Libc_model.Num _ -> ())
    varargs;
  (rendered, !tag)

let inspect ?scrub t ~sink ~taint ~data ~detail =
  (* [data] is a thunk: payloads are only materialised for real leaks *)
  t.sink_checks <- t.sink_checks + 1;
  if Taint.is_tainted taint then begin
    Ring.emit_sink_begin t.log ~sink;
    Ring.emit_sink t.log ~sink ~detail ~taint:(Taint.to_bits taint);
    (match
       A.Sink_monitor.decide (Device.monitor t.device) ~sink
         ~context:A.Sink_monitor.Native_context ~taint ~data:(data ()) ~detail
     with
     | `Allow -> ()
     | `Block -> (
       (* AppFence-style shadow data: scrub the payload before the modeled
          call reads it, so the effect proceeds with harmless bytes *)
       Flow_log.recordf t.log "SinkHandler[%s]: BLOCKED (payload scrubbed)" sink;
       match scrub with Some f -> f () | None -> ()));
    Ring.emit_sink_end t.log ~sink
  end

let stamp_file_taint t fd tag =
  if Taint.is_tainted tag then
    match A.Filesystem.path_of_fd (Device.fs t.device) fd with
    | Some path -> A.Filesystem.add_xattr_taint (Device.fs t.device) path tag
    | None -> ()

let stamp_file_ptr_taint t file_ptr tag =
  match A.Libc_model.file_fd (Device.libc_ctx t.device) file_ptr with
  | Some fd -> stamp_file_taint t fd tag
  | None -> ()

let file_ptr_taint t file_ptr =
  match A.Libc_model.file_fd (Device.libc_ctx t.device) file_ptr with
  | Some fd -> (
    match A.Filesystem.path_of_fd (Device.fs t.device) fd with
    | Some path -> A.Filesystem.xattr_taint (Device.fs t.device) path
    | None -> Taint.clear)
  | None -> Taint.clear

let fd_detail t fd =
  match A.Filesystem.path_of_fd (Device.fs t.device) fd with
  | Some path -> path
  | None -> (
    match A.Network.dest_of (Device.net t.device) fd with
    | Some dest -> dest
    | None -> Printf.sprintf "fd:%d" fd)

let file_detail t file_ptr =
  match A.Libc_model.file_fd (Device.libc_ctx t.device) file_ptr with
  | Some fd -> fd_detail t fd
  | None -> Printf.sprintf "FILE@0x%x" file_ptr

let read_data mem addr n = Bytes.to_string (Memory.read_bytes mem addr (min n 4096))

(* replace a tainted payload with '*'s and drop its tags: the sink's effect
   then proceeds over harmless bytes *)
let scrub_range t mem addr n =
  for i = 0 to n - 1 do
    Memory.write_u8 mem (addr + i) (Char.code '*')
  done;
  Taint_engine.clear_mem t.engine addr n

let on_pre t name cpu mem =
  let r i = Cpu.reg cpu i in
  let rt i = Taint_engine.reg t.engine i in
  let mt addr n = Taint_engine.mem t.engine addr n in
  let arg = A.Libc_model.arg cpu mem in
  match name with
  (* ---- Table VI taint summaries (applied before the behaviour runs,
          like Listing 3's isBegin branch) ---- *)
  | "memcpy" | "memmove" ->
    note t;
    Taint_engine.copy_mem t.engine ~src:(r 1) ~dst:(r 0) ~len:(r 2);
    Taint_engine.set_reg t.engine 0 (rt 0)
  | "memset" ->
    note t;
    Taint_engine.set_mem t.engine (r 0) (r 2) (rt 1)
  | "strcpy" ->
    note t;
    Taint_engine.copy_mem t.engine ~src:(r 1) ~dst:(r 0) ~len:(cstr_len mem (r 1))
  | "strncpy" ->
    note t;
    let len = min (cstr_len mem (r 1)) (r 2) in
    Taint_engine.copy_mem t.engine ~src:(r 1) ~dst:(r 0) ~len
  | "strcat" ->
    note t;
    let dst_len = cstr_len mem (r 0) - 1 in
    Taint_engine.copy_mem t.engine ~src:(r 1) ~dst:(r 0 + dst_len)
      ~len:(cstr_len mem (r 1))
  | "free" ->
    note t;
    (match A.Native_heap.block_size (Device.native_heap t.device) (r 0) with
     | Some size -> Taint_engine.clear_mem t.engine (r 0) size
     | None -> ())
  | "realloc" ->
    note t;
    (match A.Native_heap.block_size (Device.native_heap t.device) (r 0) with
     | Some size -> t.pending_free <- Some (r 0, size)
     | None -> t.pending_free <- None)
  (* ---- Table VII native sinks ---- *)
  | "send" ->
    let data () = read_data mem (r 1) (r 2) in
    inspect t ~sink:"send" ~taint:(mt (r 1) (r 2)) ~data ~detail:(fd_detail t (r 0))
      ~scrub:(fun () -> scrub_range t mem (r 1) (r 2))
  | "sendto" ->
    let data () = read_data mem (r 1) (r 2) in
    let dest = Memory.read_cstring mem (arg 4) in
    inspect t ~sink:"sendto" ~taint:(mt (r 1) (r 2)) ~data ~detail:dest
      ~scrub:(fun () -> scrub_range t mem (r 1) (r 2))
  | "write" ->
    let data () = read_data mem (r 1) (r 2) in
    let tag = mt (r 1) (r 2) in
    stamp_file_taint t (r 0) tag;
    inspect t ~sink:"write" ~taint:tag ~data ~detail:(fd_detail t (r 0))
      ~scrub:(fun () -> scrub_range t mem (r 1) (r 2))
  | "fwrite" ->
    let n = r 1 * r 2 in
    let data () = read_data mem (r 0) n in
    let tag = mt (r 0) n in
    stamp_file_ptr_taint t (r 3) tag;
    inspect t ~sink:"fwrite" ~taint:tag ~data ~detail:(file_detail t (r 3))
      ~scrub:(fun () -> scrub_range t mem (r 0) n)
  | "fputs" ->
    let len = cstr_len mem (r 0) - 1 in
    let data () = Memory.read_cstring mem (r 0) in
    let tag = mt (r 0) len in
    stamp_file_ptr_taint t (r 1) tag;
    inspect t ~sink:"fputs" ~taint:tag ~data ~detail:(file_detail t (r 1))
      ~scrub:(fun () -> scrub_range t mem (r 0) len)
  | "fputc" ->
    inspect t ~sink:"fputc" ~taint:(rt 0)
      ~data:(fun () -> String.make 1 (Char.chr (r 0 land 0xFF)))
      ~detail:(file_detail t (r 1))
  | "fprintf" | "vfprintf" ->
    let rendered, tag = printf_taint t cpu mem ~fmt:(r 1) ~first:2 in
    let scrub () =
      (* scrub every tainted %s source buffer the call is about to render *)
      let _, varargs = A.Libc_model.format_args mem cpu ~fmt:(r 1) ~first:2 in
      List.iter
        (fun va ->
          match va with
          | A.Libc_model.Str { addr; value } ->
            let len = String.length value in
            if Taint.is_tainted (Taint_engine.mem t.engine addr len) then
              scrub_range t mem addr len
          | A.Libc_model.Num _ -> ())
        varargs
    in
    stamp_file_ptr_taint t (r 0) tag;
    inspect t ~sink:"fprintf" ~taint:tag ~data:(fun () -> rendered)
      ~detail:(file_detail t (r 0)) ~scrub
  | "fopen" ->
    Flow_log.recordf t.log "TrustCallHandler[fopen] begin";
    Flow_log.recordf t.log "Open '%s'" (Memory.read_cstring mem (r 0));
    Flow_log.recordf t.log "TrustCallHandler[fopen] end"
  | "fclose" -> Flow_log.recordf t.log "TrustCallHandler[fclose] Close FILE@0x%x" (r 0)
  | _ -> ()

let libm_unary_f = [ "sinf"; "cosf"; "sqrtf"; "expf" ]
let libm_binary_f = [ "powf"; "atan2f" ]
let libm_binary_d = [ "pow"; "atan2"; "fmod" ]

(* Precomputed classification of the modeled libm entry points: the post
   handler's fallthrough case runs for every otherwise-unhandled host call,
   so it must not scan string lists. *)
type libm_kind = Lm_unary_f | Lm_binary_f | Lm_binary_d | Lm_unary_d

let libm_kind =
  let tbl = Hashtbl.create 64 in
  List.iter (fun n -> Hashtbl.replace tbl n Lm_unary_f) libm_unary_f;
  List.iter (fun n -> Hashtbl.replace tbl n Lm_binary_f) libm_binary_f;
  List.iter (fun n -> Hashtbl.replace tbl n Lm_binary_d) libm_binary_d;
  List.iter
    (fun n -> if not (Hashtbl.mem tbl n) then Hashtbl.replace tbl n Lm_unary_d)
    A.Syscalls.modeled_libm;
  fun name -> Hashtbl.find_opt tbl name

(* Host functions whose post handler reads pre-call argument registers; only
   these pay the register snapshot on entry. *)
let needs_pre_regs =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun n -> Hashtbl.replace tbl n ())
    [ "strlen"; "atoi"; "atol"; "strtoul"; "strtol"; "strcmp"; "strcasecmp";
      "strncmp"; "strncasecmp"; "memcmp"; "strchr"; "strrchr"; "strstr";
      "memchr"; "strdup"; "sprintf"; "vsprintf"; "snprintf"; "vsnprintf";
      "sscanf"; "fread"; "fgets"; "getc"; "read"; "strtod" ];
  fun name -> Hashtbl.mem tbl name

let on_post t name cpu mem pre_regs =
  let r i = Cpu.reg cpu i in
  let pre i = match pre_regs with Some a -> a.(i) | None -> r i in
  let rt_pre i = Taint_engine.reg t.engine i in
  let mt addr n = Taint_engine.mem t.engine addr n in
  match name with
  | "strlen" | "atoi" | "atol" | "strtoul" | "strtol" ->
    note t;
    Taint_engine.set_reg t.engine 0 (mt (pre 0) (cstr_len mem (pre 0)))
  | "strcmp" | "strcasecmp" | "strncmp" | "strncasecmp" ->
    note t;
    Taint_engine.set_reg t.engine 0
      (Taint.union
         (mt (pre 0) (cstr_len mem (pre 0)))
         (mt (pre 1) (cstr_len mem (pre 1))))
  | "memcmp" ->
    note t;
    Taint_engine.set_reg t.engine 0
      (Taint.union (mt (pre 0) (pre 2)) (mt (pre 1) (pre 2)))
  | "strchr" | "strrchr" | "strstr" | "memchr" ->
    note t;
    Taint_engine.set_reg t.engine 0 (mt (pre 0) (cstr_len mem (pre 0)))
  | "strdup" ->
    note t;
    let len = cstr_len mem (pre 0) in
    if r 0 <> 0 then Taint_engine.copy_mem t.engine ~src:(pre 0) ~dst:(r 0) ~len
  | "malloc" | "calloc" | "mmap" ->
    note t;
    if r 0 <> 0 then
      (match A.Native_heap.block_size (Device.native_heap t.device) (r 0) with
       | Some size -> Taint_engine.clear_mem t.engine (r 0) size
       | None -> ())
  | "realloc" ->
    note t;
    (match t.pending_free with
     | Some (old_ptr, old_size) when r 0 <> 0 ->
       Taint_engine.copy_mem t.engine ~src:old_ptr ~dst:(r 0) ~len:old_size;
       if old_ptr <> r 0 then Taint_engine.clear_mem t.engine old_ptr old_size
     | Some _ | None -> ());
    t.pending_free <- None
  | "sprintf" | "vsprintf" ->
    note t;
    let _, tag = printf_taint t cpu mem ~fmt:(pre 1) ~first:2 in
    let written = cstr_len mem (pre 0) in
    Taint_engine.set_mem t.engine (pre 0) written tag
  | "snprintf" | "vsnprintf" ->
    note t;
    let _, tag = printf_taint t cpu mem ~fmt:(pre 2) ~first:3 in
    let written = cstr_len mem (pre 0) in
    Taint_engine.set_mem t.engine (pre 0) written tag
  | "sscanf" ->
    note t;
    (* every %-converted output inherits the input string's taint *)
    let input_taint = mt (pre 0) (cstr_len mem (pre 0)) in
    if Taint.is_tainted input_taint then begin
      let fmt = Memory.read_cstring mem (pre 1) in
      let n_specs =
        let count = ref 0 in
        String.iteri
          (fun i c -> if c = '%' && i + 1 < String.length fmt then incr count)
          fmt;
        !count
      in
      for i = 0 to n_specs - 1 do
        let dst = if 2 + i < 4 then pre (2 + i) else
            Memory.read_u32 mem (pre 13 + (4 * (2 + i - 4))) in
        Taint_engine.add_mem t.engine dst 4 input_taint
      done
    end
  | "fread" ->
    note t;
    let tag = file_ptr_taint t (pre 3) in
    if Taint.is_tainted tag then begin
      let n = pre 1 * pre 2 in
      Taint_engine.add_mem t.engine (pre 0) n tag;
      Taint_engine.set_reg t.engine 0 tag
    end
  | "fgets" ->
    note t;
    let tag = file_ptr_taint t (pre 2) in
    if Taint.is_tainted tag && r 0 <> 0 then begin
      Taint_engine.add_mem t.engine (pre 0) (cstr_len mem (pre 0)) tag;
      Taint_engine.set_reg t.engine 0 tag
    end
  | "getc" ->
    note t;
    let tag = file_ptr_taint t (pre 0) in
    if Taint.is_tainted tag then Taint_engine.set_reg t.engine 0 tag
  | "read" ->
    note t;
    let tag =
      match A.Filesystem.path_of_fd (Device.fs t.device) (pre 0) with
      | Some path -> A.Filesystem.xattr_taint (Device.fs t.device) path
      | None -> Taint.clear
    in
    if Taint.is_tainted tag then begin
      Taint_engine.add_mem t.engine (pre 1) (pre 2) tag;
      Taint_engine.set_reg t.engine 0 tag
    end
  | "strtod" ->
    note t;
    let tag = mt (pre 0) (cstr_len mem (pre 0)) in
    Taint_engine.set_reg t.engine 0 tag;
    Taint_engine.set_reg t.engine 1 tag
  | _ -> (
    match libm_kind name with
    | None -> ()
    | Some kind ->
      note t;
      (match kind with
       | Lm_unary_f -> Taint_engine.set_reg t.engine 0 (rt_pre 0)
       | Lm_binary_f ->
         Taint_engine.set_reg t.engine 0 (Taint.union (rt_pre 0) (rt_pre 1))
       | Lm_binary_d ->
         (* double based: result in r0:r1 *)
         let tag =
           Taint.union
             (Taint.union (rt_pre 0) (rt_pre 1))
             (Taint.union (rt_pre 2) (rt_pre 3))
         in
         Taint_engine.set_reg t.engine 0 tag;
         Taint_engine.set_reg t.engine 1 tag
       | Lm_unary_d ->
         let tag = Taint.union (rt_pre 0) (rt_pre 1) in
         Taint_engine.set_reg t.engine 0 tag;
         Taint_engine.set_reg t.engine 1 tag))

let attach device engine log =
  let machine = Device.machine device in
  let t =
    { device;
      engine;
      log;
      pre_regs = [];
      pending_free = None;
      summaries = 0;
      sink_checks = 0 }
  in
  Machine.add_listener machine (fun ev ->
      match ev with
      | Machine.Ev_host_pre hf
        when hf.Machine.hf_lib = "libc.so" || hf.Machine.hf_lib = "libm.so" ->
        let cpu = Machine.cpu machine and mem = Machine.mem machine in
        if needs_pre_regs hf.Machine.hf_name then
          t.pre_regs <-
            (hf.Machine.hf_name, Array.copy cpu.Cpu.regs) :: t.pre_regs;
        on_pre t hf.Machine.hf_name cpu mem
      | Machine.Ev_host_post hf
        when hf.Machine.hf_lib = "libc.so" || hf.Machine.hf_lib = "libm.so" ->
        let cpu = Machine.cpu machine and mem = Machine.mem machine in
        let pre =
          match t.pre_regs with
          | (n, regs) :: rest when n = hf.Machine.hf_name ->
            t.pre_regs <- rest;
            Some regs
          | _ -> None
        in
        on_post t hf.Machine.hf_name cpu mem pre
      | Machine.Ev_host_pre _ | Machine.Ev_host_post _ | Machine.Ev_insn _
      | Machine.Ev_branch _ | Machine.Ev_svc _ ->
        ());
  t
