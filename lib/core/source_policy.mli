(** SourcePolicy: the record NDroid builds when tainted data is about to
    enter a native method (paper, Listing 1 and Sec. V-B "JNI Entry").

    Step 1 — hooking [dvmCallJNIMethod] — creates and populates the policy:
    the native method's first-instruction address, the taints of the first
    four parameters (registers r0-r3), the number and taints of the stack
    parameters, the method shorty, and the access flag.  Policies live in a
    hash map keyed by the method address.

    Step 2 happens "right before the native method executes": when the
    instruction tracer sees the first instruction at a policy's address, the
    policy's handler initialises the shadow registers and the stack
    memory's taint map accordingly. *)

module Taint = Ndroid_taint.Taint

type t = {
  method_address : int;
  t_r0 : Taint.t;
  t_r1 : Taint.t;
  t_r2 : Taint.t;
  t_r3 : Taint.t;
  stack_args_num : int;
  stack_args_taints : Taint.t array;
  method_shorty : string;
  access_flag : int;  (** 0x8 = ACC_STATIC, 0x1 = ACC_PUBLIC *)
  method_name : string;
  class_name : string;
}

val of_jni_call : Ndroid_runtime.Device.jni_call -> t
(** Build from the bridge's captured crossing. *)

val apply : t -> Taint_engine.t -> Ndroid_arm.Cpu.t -> unit
(** The policy handler: write r0-r3 taints into the shadow registers and
    the stack-argument taints into the taint map at the current SP. *)

val any_tainted : t -> bool

(** The [<addr, SourcePolicy>] hash map. *)
module Table : sig
  type policy = t
  type t

  val create : unit -> t
  val add : t -> policy -> unit
  val find : t -> int -> policy option
  val mem : t -> int -> bool
  val size : t -> int
end

val pp : Format.formatter -> t -> unit
