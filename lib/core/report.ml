module Taint = Ndroid_taint.Taint
module A = Ndroid_android
module Verdict = Ndroid_report.Verdict
module Json = Ndroid_report.Json

(* The unified per-app report: same shape, same canonical codec as the
   static analyzer's output (the old hand-rolled printer is gone). *)
let to_report ?(app_name = "app") nd =
  let stats = Ndroid.stats nd in
  { Verdict.r_app = app_name;
    r_analysis = "dynamic";
    r_verdict = Ndroid.verdict nd;
    r_meta =
      [ ("source_policies", Json.Int stats.Ndroid.source_policies);
        ("policies_applied", Json.Int stats.Ndroid.policies_applied);
        ("traced_instructions", Json.Int stats.Ndroid.traced_instructions);
        ("summaries_applied", Json.Int stats.Ndroid.summaries_applied);
        ("sink_checks", Json.Int stats.Ndroid.sink_checks) ] }

let json ?app_name nd =
  Json.to_string (Verdict.report_to_json (to_report ?app_name nd))

let generate ?(app_name = "app") ?(transmissions = []) ?(file_writes = []) nd =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  let leaks = Ndroid.leaks nd in
  let tainted_leaks =
    List.filter (fun l -> Taint.is_tainted l.A.Sink_monitor.taint) leaks
  in
  line "==============================================================";
  line "NDroid analysis report: %s" app_name;
  line "==============================================================";
  line "";
  (match Ndroid.verdict nd with
   | Verdict.Clean | Verdict.Crashed _ | Verdict.Timeout ->
     line "VERDICT: no tainted information flow reached a sink"
   | Verdict.Flagged flows ->
     let categories =
       List.sort_uniq compare
         (List.concat_map
            (fun (f : Ndroid_report.Flow.t) ->
              Taint.categories f.Ndroid_report.Flow.f_taint)
            flows)
     in
     line "VERDICT: %d information leak(s) detected" (List.length tainted_leaks);
     line "leaked categories: %s" (String.concat ", " categories));
  line "";
  if tainted_leaks <> [] then begin
    line "-- leaks ----------------------------------------------------";
    List.iteri
      (fun i l ->
        line "%d. sink=%s (%s context)" (i + 1) l.A.Sink_monitor.sink
          (match l.A.Sink_monitor.context with
           | A.Sink_monitor.Java_context -> "Java"
           | A.Sink_monitor.Native_context -> "native");
        line "   taint:   %s"
          (Format.asprintf "%a" Taint.pp_verbose l.A.Sink_monitor.taint);
        line "   dest:    %s" l.A.Sink_monitor.detail;
        line "   payload: %S" l.A.Sink_monitor.data)
      tainted_leaks;
    line ""
  end;
  if transmissions <> [] then begin
    line "-- network traffic ------------------------------------------";
    List.iter
      (fun t ->
        line "   -> %s (%d bytes)" t.A.Network.dest
          (String.length t.A.Network.payload))
      transmissions;
    line ""
  end;
  if file_writes <> [] then begin
    line "-- file writes ----------------------------------------------";
    List.iter (fun w -> line "   -> %s" w.A.Filesystem.w_path) file_writes;
    line ""
  end;
  line "-- engine ----------------------------------------------------";
  line "%s" (Format.asprintf "%a" Ndroid.pp_stats (Ndroid.stats nd));
  line "";
  let log = Flow_log.entries (Ndroid.log nd) in
  if log <> [] then begin
    line "-- flow log (%d entries) -------------------------------------"
      (List.length log);
    List.iter (fun l -> line "   %s" l) log
  end;
  Buffer.contents buf

let print ?app_name ?transmissions ?file_writes nd =
  print_string (generate ?app_name ?transmissions ?file_writes nd)
