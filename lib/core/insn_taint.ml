(* Table V moved down into the emulator layer (the superblock translator
   composes its rules at translate time); alias for existing users of
   [Ndroid_core.Insn_taint]. *)
include Ndroid_emulator.Insn_taint
