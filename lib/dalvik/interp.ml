module Taint = Ndroid_taint.Taint

exception Wrong_arity of string

let exec_binop op a b =
  let open Int32 in
  match op with
  | Bytecode.Add -> add a b
  | Bytecode.Sub -> sub a b
  | Bytecode.Mul -> mul a b
  | Bytecode.Div -> if b = 0l then raise Division_by_zero else div a b
  | Bytecode.Rem -> if b = 0l then raise Division_by_zero else rem a b
  | Bytecode.And -> logand a b
  | Bytecode.Or -> logor a b
  | Bytecode.Xor -> logxor a b
  | Bytecode.Shl -> shift_left a (to_int b land 31)
  | Bytecode.Shr -> shift_right a (to_int b land 31)
  | Bytecode.Ushr -> shift_right_logical a (to_int b land 31)

let exec_binop_wide op a b =
  let open Int64 in
  match op with
  | Bytecode.Add -> add a b
  | Bytecode.Sub -> sub a b
  | Bytecode.Mul -> mul a b
  | Bytecode.Div -> if b = 0L then raise Division_by_zero else div a b
  | Bytecode.Rem -> if b = 0L then raise Division_by_zero else rem a b
  | Bytecode.And -> logand a b
  | Bytecode.Or -> logor a b
  | Bytecode.Xor -> logxor a b
  | Bytecode.Shl -> shift_left a (to_int b land 63)
  | Bytecode.Shr -> shift_right a (to_int b land 63)
  | Bytecode.Ushr -> shift_right_logical a (to_int b land 63)

let exec_binop_float op a b =
  match op with
  | Bytecode.Add -> a +. b
  | Bytecode.Sub -> a -. b
  | Bytecode.Mul -> a *. b
  | Bytecode.Div -> a /. b
  | Bytecode.Rem -> Float.rem a b
  | Bytecode.And | Bytecode.Or | Bytecode.Xor | Bytecode.Shl | Bytecode.Shr
  | Bytecode.Ushr ->
    invalid_arg "bitwise operation on float"

let exec_unop op v =
  match (op, v) with
  | Bytecode.Neg, Dvalue.Int n -> Dvalue.Int (Int32.neg n)
  | Bytecode.Neg, Dvalue.Long n -> Dvalue.Long (Int64.neg n)
  | Bytecode.Neg, Dvalue.Float f -> Dvalue.Float (-.f)
  | Bytecode.Neg, Dvalue.Double f -> Dvalue.Double (-.f)
  | Bytecode.Not, v -> Dvalue.Int (Int32.lognot (Dvalue.as_int v))
  | Bytecode.Int_to_long, v -> Dvalue.Long (Dvalue.as_long v)
  | Bytecode.Int_to_float, v ->
    Dvalue.Float (Int32.float_of_bits (Int32.bits_of_float (Dvalue.as_float v)))
  | Bytecode.Int_to_double, v -> Dvalue.Double (Dvalue.as_double v)
  | Bytecode.Long_to_int, v -> Dvalue.Int (Dvalue.as_int v)
  | Bytecode.Float_to_int, v -> Dvalue.Int (Dvalue.as_int v)
  | Bytecode.Double_to_int, v -> Dvalue.Int (Dvalue.as_int v)
  | Bytecode.Float_to_double, v -> Dvalue.Double (Dvalue.as_double v)
  | Bytecode.Double_to_float, v ->
    Dvalue.Float (Int32.float_of_bits (Int32.bits_of_float (Dvalue.as_float v)))
  | Bytecode.Neg, (Dvalue.Null | Dvalue.Obj _) ->
    invalid_arg "neg on reference value"

let compare_values cmp a b =
  let c =
    match (a, b) with
    | Dvalue.Obj x, Dvalue.Obj y -> compare x y
    | Dvalue.Null, Dvalue.Null -> 0
    | Dvalue.Null, Dvalue.Obj _ -> -1
    | Dvalue.Obj _, Dvalue.Null -> 1
    | _ -> Int32.compare (Dvalue.as_int a) (Dvalue.as_int b)
  in
  match cmp with
  | Bytecode.Eq -> c = 0
  | Bytecode.Ne -> c <> 0
  | Bytecode.Lt -> c < 0
  | Bytecode.Ge -> c >= 0
  | Bytecode.Gt -> c > 0
  | Bytecode.Le -> c <= 0

let wrong_arity m expected got =
  raise
    (Wrong_arity
       (Printf.sprintf "%s expects %d args, got %d" (Classes.qualified_name m)
          expected got))

let zero_ret = (Dvalue.zero, Taint.clear)

(* Size/clear a pooled frame for [nregs] registers with [nlocals] low
   (local) registers; the caller writes the argument registers above. *)
let prep_frame (f : Vm.frame) nregs nlocals track =
  if Array.length f.Vm.f_regs < nregs then begin
    let n = max nregs 16 in
    f.Vm.f_regs <- Array.make n Dvalue.zero;
    f.Vm.f_taints <- Array.make n Taint.clear
  end
  else begin
    Array.fill f.Vm.f_regs 0 nlocals Dvalue.zero;
    if track then Array.fill f.Vm.f_taints 0 nlocals Taint.clear
  end

(* ------------------------------------------------------------------ *)
(* Fast path: pre-linked code, inline caches, pooled frames.           *)
(* ------------------------------------------------------------------ *)

let call_non_bytecode vm (m : Classes.method_def) args =
  match m.Classes.m_body with
  | Classes.Intrinsic key -> (
    match Hashtbl.find_opt vm.Vm.intrinsics key with
    | Some f ->
      let r = f vm args in
      vm.Vm.ret <- r;
      r
    | None ->
      raise (Vm.Dvm_error (Printf.sprintf "intrinsic %s not registered" key)))
  | Classes.Native _ -> (
    vm.Vm.counters.Vm.native_calls <- vm.Vm.counters.Vm.native_calls + 1;
    match vm.Vm.native_dispatch with
    | Some dispatch ->
      let r = dispatch vm m args in
      vm.Vm.ret <- r;
      r
    | None ->
      raise
        (Vm.Dvm_error
           (Printf.sprintf "no native dispatch installed for %s"
              (Classes.qualified_name m))))
  | Classes.Bytecode _ -> assert false

let rec invoke vm (m : Classes.method_def) args =
  vm.Vm.counters.Vm.invokes <- vm.Vm.counters.Vm.invokes + 1;
  let expected = Classes.ins_count m in
  if Array.length args <> expected then
    wrong_arity m expected (Array.length args);
  match m.Classes.m_body with
  | Classes.Intrinsic _ | Classes.Native _ -> call_non_bytecode vm m args
  | Classes.Bytecode _ -> (
    match (Vm.resolved_of_method vm m).Linked.r_body with
    | Linked.Not_bytecode -> assert false
    | Linked.Code lk ->
      (match vm.Vm.on_invoke with Some f -> f m | None -> ());
      let argc = Array.length args in
      let nregs = max m.Classes.m_registers argc in
      let track = vm.Vm.track_taint in
      let d = vm.Vm.depth in
      let f = Vm.frame vm d in
      vm.Vm.depth <- d + 1;
      prep_frame f nregs (nregs - argc) track;
      let first_in = nregs - argc in
      Array.iteri
        (fun i (v, t) ->
          f.Vm.f_regs.(first_in + i) <- v;
          if track then f.Vm.f_taints.(first_in + i) <- t)
        args;
      (match exec vm m lk f with
       | r ->
         vm.Vm.depth <- d;
         r
       | exception e ->
         vm.Vm.depth <- d;
         raise e))

(* Resolve an invoke site, consulting its monomorphic inline cache first:
   static/direct sites resolve exactly once; virtual sites skip the vtable
   hash lookup while the receiver class repeats. *)
and resolve_invoke vm (site : Linked.invoke_site) regs =
  match site.Linked.iv_kind with
  | Bytecode.Static | Bytecode.Direct -> (
    match site.Linked.iv_cache with
    | Some r -> r
    | None ->
      let r =
        Vm.find_method_arity vm site.Linked.iv_ref.Bytecode.m_class
          site.Linked.iv_ref.Bytecode.m_name site.Linked.iv_argc
      in
      site.Linked.iv_cache <- Some r;
      r)
  | Bytecode.Virtual ->
    if site.Linked.iv_argc = 0 then
      raise (Vm.Dvm_error "virtual invoke without receiver");
    (* dynamic dispatch on the receiver's class *)
    let dispatch_cls =
      match regs.(site.Linked.iv_args.(0)) with
      | Dvalue.Obj id -> (
        match (Heap.get vm.Vm.heap id).Heap.kind with
        | Heap.Instance { cls; _ } -> cls
        | Heap.String _ | Heap.Array _ -> site.Linked.iv_ref.Bytecode.m_class)
      | Dvalue.Null ->
        Vm.throw vm "Ljava/lang/NullPointerException;"
          (site.Linked.iv_ref.Bytecode.m_class ^ "->"
          ^ site.Linked.iv_ref.Bytecode.m_name)
      | Dvalue.Int _ | Dvalue.Long _ | Dvalue.Float _ | Dvalue.Double _ ->
        site.Linked.iv_ref.Bytecode.m_class
    in
    (match site.Linked.iv_cache with
     | Some r when String.equal site.Linked.iv_cls dispatch_cls -> r
     | Some _ | None ->
       let r =
         Vm.find_method_arity vm dispatch_cls
           site.Linked.iv_ref.Bytecode.m_name site.Linked.iv_argc
       in
       site.Linked.iv_cls <- dispatch_cls;
       site.Linked.iv_cache <- Some r;
       r)

and exec vm (m : Classes.method_def) (lk : Linked.t) (f : Vm.frame) =
  (* TaintDroid stack layout (Fig. 1): parameters land in the highest
     registers; locals occupy the low ones.  Taints sit next to values in
     the frame's flat arrays. *)
  let regs = f.Vm.f_regs in
  let taints = f.Vm.f_taints in
  let code = lk.Linked.l_code in
  let src = lk.Linked.l_src in
  let handlers = lk.Linked.l_handlers in
  let ncode = Array.length code in
  let counters = vm.Vm.counters in
  let track = vm.Vm.track_taint in
  let pending_exception = ref (Dvalue.Null, Taint.clear) in
  let get r = regs.(r) in
  let taint_of r = if track then taints.(r) else Taint.clear in
  let set r v t =
    regs.(r) <- v;
    if track then taints.(r) <- t
  in
  let heap_obj v =
    match v with
    | Dvalue.Obj id -> (
      try Heap.get vm.Vm.heap id
      with Not_found -> Vm.throw vm "Ljava/lang/RuntimeException;" "dangling ref")
    | Dvalue.Null ->
      Vm.throw vm "Ljava/lang/NullPointerException;" "null dereference"
    | Dvalue.Int _ | Dvalue.Long _ | Dvalue.Float _ | Dvalue.Double _ ->
      Vm.throw vm "Ljava/lang/RuntimeException;" "not a reference"
  in
  let cur_pc = ref 0 in
  let rec step pc =
    if pc < 0 || pc >= ncode then
      raise
        (Vm.Dvm_error
           (Printf.sprintf "pc %d out of range in %s" pc
              (Classes.qualified_name m)));
    cur_pc := pc;
    counters.Vm.bytecodes <- counters.Vm.bytecodes + 1;
    (match vm.Vm.on_bytecode with Some hook -> hook m src.(pc) | None -> ());
    match code.(pc) with
    | Linked.Nop -> step (pc + 1)
    | Linked.Const (r, v) ->
      set r v Taint.clear;
      step (pc + 1)
    | Linked.Const_string (r, s) ->
      let v, t = Vm.new_string vm s in
      set r v t;
      step (pc + 1)
    | Linked.Move (d, s) ->
      set d (get s) (taint_of s);
      step (pc + 1)
    | Linked.Move_result r ->
      let v, t = vm.Vm.ret in
      set r v (if track then t else Taint.clear);
      step (pc + 1)
    | Linked.Move_exception r ->
      let v, t = !pending_exception in
      set r v (if track then t else Taint.clear);
      step (pc + 1)
    | Linked.Return_void ->
      vm.Vm.ret <- zero_ret;
      vm.Vm.ret
    | Linked.Return r ->
      vm.Vm.ret <- (get r, taint_of r);
      vm.Vm.ret
    | Linked.Binop (op, d, a, b) ->
      set d
        (Dvalue.Int (exec_binop op (Dvalue.as_int (get a)) (Dvalue.as_int (get b))))
        (Taint.union (taint_of a) (taint_of b));
      step (pc + 1)
    | Linked.Binop_wide (op, d, a, b) ->
      set d
        (Dvalue.Long
           (exec_binop_wide op (Dvalue.as_long (get a)) (Dvalue.as_long (get b))))
        (Taint.union (taint_of a) (taint_of b));
      step (pc + 1)
    | Linked.Binop_float (op, d, a, b) ->
      let r = exec_binop_float op (Dvalue.as_float (get a)) (Dvalue.as_float (get b)) in
      set d
        (Dvalue.Float (Int32.float_of_bits (Int32.bits_of_float r)))
        (Taint.union (taint_of a) (taint_of b));
      step (pc + 1)
    | Linked.Binop_double (op, d, a, b) ->
      set d
        (Dvalue.Double
           (exec_binop_float op (Dvalue.as_double (get a)) (Dvalue.as_double (get b))))
        (Taint.union (taint_of a) (taint_of b));
      step (pc + 1)
    | Linked.Binop_lit (op, d, a, lit) ->
      set d
        (Dvalue.Int (exec_binop op (Dvalue.as_int (get a)) lit))
        (taint_of a);
      step (pc + 1)
    | Linked.Unop (op, d, s) ->
      set d (exec_unop op (get s)) (taint_of s);
      step (pc + 1)
    | Linked.Cmp_long (d, a, b) ->
      let c = Int64.compare (Dvalue.as_long (get a)) (Dvalue.as_long (get b)) in
      set d (Dvalue.Int (Int32.of_int c)) (Taint.union (taint_of a) (taint_of b));
      step (pc + 1)
    | Linked.If (c, a, b, target) ->
      if compare_values c (get a) (get b) then step target else step (pc + 1)
    | Linked.Ifz (c, a, target) ->
      let test =
        match c with
        | Bytecode.Eq -> not (Dvalue.truthy (get a))
        | Bytecode.Ne -> Dvalue.truthy (get a)
        | Bytecode.Lt | Bytecode.Ge | Bytecode.Gt | Bytecode.Le ->
          compare_values c (get a) (Dvalue.Int 0l)
      in
      if test then step target else step (pc + 1)
    | Linked.Goto target -> step target
    | Linked.New_instance (r, site) ->
      let size =
        if site.Linked.ns_size >= 0 then site.Linked.ns_size
        else begin
          let s = Vm.instance_size vm site.Linked.ns_cls in
          site.Linked.ns_size <- s;
          s
        end
      in
      let o = Heap.alloc_instance vm.Vm.heap site.Linked.ns_cls size in
      set r (Dvalue.Obj o.Heap.id) Taint.clear;
      step (pc + 1)
    | Linked.New_array (d, n, elem_type) ->
      let size = Int32.to_int (Dvalue.as_int (get n)) in
      if size < 0 then
        Vm.throw vm "Ljava/lang/NegativeArraySizeException;" (string_of_int size);
      let o = Heap.alloc_array vm.Vm.heap elem_type size in
      set d (Dvalue.Obj o.Heap.id) Taint.clear;
      step (pc + 1)
    | Linked.Array_length (d, a) ->
      let o = heap_obj (get a) in
      let len =
        match o.Heap.kind with
        | Heap.Array { elems; _ } -> Array.length elems
        | Heap.String s -> String.length s
        | Heap.Instance _ ->
          Vm.throw vm "Ljava/lang/RuntimeException;" "array-length on non-array"
      in
      (* TaintDroid: array length carries the array object's taint. *)
      set d (Dvalue.Int (Int32.of_int len)) (if track then o.Heap.taint else Taint.clear);
      step (pc + 1)
    | Linked.Aget (v, a, i) ->
      let o = heap_obj (get a) in
      let idx = Int32.to_int (Dvalue.as_int (get i)) in
      (match o.Heap.kind with
       | Heap.Array { elems; _ } ->
         if idx < 0 || idx >= Array.length elems then
           Vm.throw vm "Ljava/lang/ArrayIndexOutOfBoundsException;"
             (string_of_int idx);
         (* TaintDroid: one taint per array — the whole array's tag flows. *)
         set v elems.(idx)
           (if track then Taint.union o.Heap.taint (taint_of i) else Taint.clear)
       | Heap.String _ | Heap.Instance _ ->
         Vm.throw vm "Ljava/lang/RuntimeException;" "aget on non-array");
      step (pc + 1)
    | Linked.Aput (v, a, i) ->
      let o = heap_obj (get a) in
      let idx = Int32.to_int (Dvalue.as_int (get i)) in
      (match o.Heap.kind with
       | Heap.Array { elems; _ } ->
         if idx < 0 || idx >= Array.length elems then
           Vm.throw vm "Ljava/lang/ArrayIndexOutOfBoundsException;"
             (string_of_int idx);
         elems.(idx) <- get v;
         if track then o.Heap.taint <- Taint.union o.Heap.taint (taint_of v)
       | Heap.String _ | Heap.Instance _ ->
         Vm.throw vm "Ljava/lang/RuntimeException;" "aput on non-array");
      step (pc + 1)
    | Linked.Iget (v, ob, site) ->
      let o = heap_obj (get ob) in
      (match o.Heap.kind with
       | Heap.Instance { cls; values; taints = ftaints } ->
         let idx =
           if String.equal site.Linked.fs_cls cls then site.Linked.fs_idx
           else begin
             let i = Vm.field_index vm cls site.Linked.fs_ref.Bytecode.f_name in
             site.Linked.fs_cls <- cls;
             site.Linked.fs_idx <- i;
             i
           end
         in
         set v values.(idx) (if track then ftaints.(idx) else Taint.clear)
       | Heap.String _ | Heap.Array _ ->
         Vm.throw vm "Ljava/lang/RuntimeException;" "iget on non-instance");
      step (pc + 1)
    | Linked.Iput (v, ob, site) ->
      let o = heap_obj (get ob) in
      (match o.Heap.kind with
       | Heap.Instance { cls; values; taints = ftaints } ->
         let idx =
           if String.equal site.Linked.fs_cls cls then site.Linked.fs_idx
           else begin
             let i = Vm.field_index vm cls site.Linked.fs_ref.Bytecode.f_name in
             site.Linked.fs_cls <- cls;
             site.Linked.fs_idx <- i;
             i
           end
         in
         values.(idx) <- get v;
         if track then ftaints.(idx) <- taint_of v
       | Heap.String _ | Heap.Array _ ->
         Vm.throw vm "Ljava/lang/RuntimeException;" "iput on non-instance");
      step (pc + 1)
    | Linked.Sget (v, site) ->
      let cell =
        match site.Linked.ss_cell with
        | Some c -> c
        | None ->
          let c =
            Vm.static_ref vm site.Linked.ss_ref.Bytecode.f_class
              site.Linked.ss_ref.Bytecode.f_name
          in
          site.Linked.ss_cell <- Some c;
          c
      in
      let value, t = !cell in
      set v value (if track then t else Taint.clear);
      step (pc + 1)
    | Linked.Sput (v, site) ->
      let cell =
        match site.Linked.ss_cell with
        | Some c -> c
        | None ->
          let c =
            Vm.static_ref vm site.Linked.ss_ref.Bytecode.f_class
              site.Linked.ss_ref.Bytecode.f_name
          in
          site.Linked.ss_cell <- Some c;
          c
      in
      cell := (get v, taint_of v);
      step (pc + 1)
    | Linked.Invoke site ->
      let entry = resolve_invoke vm site regs in
      counters.Vm.invokes <- counters.Vm.invokes + 1;
      let argc = site.Linked.iv_argc in
      if entry.Linked.r_argc <> argc then
        wrong_arity entry.Linked.r_m entry.Linked.r_argc argc;
      (match entry.Linked.r_body with
       | Linked.Code clk ->
         let callee = entry.Linked.r_m in
         (match vm.Vm.on_invoke with Some hook -> hook callee | None -> ());
         (* Method spans are torrential, so like instruction events they
            ride the [tracing] gate, not just [on] — the name string below
            allocates and must stay off the metrics-only path. *)
         let obs = vm.Vm.obs in
         let traced = obs.Ndroid_obs.Ring.on && obs.Ndroid_obs.Ring.tracing in
         if traced then
           Ndroid_obs.Ring.emit_invoke obs (Classes.qualified_name callee);
         let cn = max callee.Classes.m_registers argc in
         let d = vm.Vm.depth in
         let cf = Vm.frame vm d in
         vm.Vm.depth <- d + 1;
         prep_frame cf cn (cn - argc) track;
         let first_in = cn - argc in
         let cregs = cf.Vm.f_regs in
         let ctaints = cf.Vm.f_taints in
         let srcs = site.Linked.iv_args in
         for i = 0 to argc - 1 do
           let r = Array.unsafe_get srcs i in
           cregs.(first_in + i) <- regs.(r);
           if track then ctaints.(first_in + i) <- taints.(r)
         done;
         (match exec vm callee clk cf with
          | _ ->
            vm.Vm.depth <- d;
            if traced then
              Ndroid_obs.Ring.emit_return obs (Classes.qualified_name callee)
          | exception e ->
            vm.Vm.depth <- d;
            (* close the span on the unwind path too, so exported traces
               stay balanced without synthesis *)
            if traced then
              Ndroid_obs.Ring.emit_return obs (Classes.qualified_name callee);
            raise e)
       | Linked.Not_bytecode ->
         let srcs = site.Linked.iv_args in
         let args =
           Array.init argc (fun i ->
               let r = srcs.(i) in
               (regs.(r), if track then taints.(r) else Taint.clear))
         in
         ignore (call_non_bytecode vm entry.Linked.r_m args));
      step (pc + 1)
    | Linked.Packed_switch (r, first_key, targets) ->
      let v = Int32.to_int (Int32.sub (Dvalue.as_int (get r)) first_key) in
      if v >= 0 && v < Array.length targets then step targets.(v)
      else step (pc + 1)
    | Linked.Sparse_switch (r, entries) ->
      let v = Dvalue.as_int (get r) in
      (match Array.find_opt (fun (k, _) -> k = v) entries with
       | Some (_, target) -> step target
       | None -> step (pc + 1))
    | Linked.Throw r -> raise (Vm.Java_throw (get r, taint_of r))
    | Linked.Check_cast (_, _) -> step (pc + 1)
    | Linked.Instance_of (d, r, cls) ->
      let is =
        match get r with
        | Dvalue.Obj id -> (
          match (Heap.get vm.Vm.heap id).Heap.kind with
          | Heap.Instance { cls = c; _ } -> c = cls
          | Heap.String _ -> cls = "Ljava/lang/String;"
          | Heap.Array _ -> false)
        | Dvalue.Null | Dvalue.Int _ | Dvalue.Long _ | Dvalue.Float _
        | Dvalue.Double _ ->
          false
      in
      set d (Dvalue.Int (if is then 1l else 0l)) (taint_of r);
      step (pc + 1)
  in
  let find_handler pc =
    List.find_opt
      (fun h -> pc >= h.Classes.try_start && pc < h.Classes.try_end)
      handlers
  in
  let rec run pc =
    let outcome =
      try `Done (step pc) with
      | Vm.Java_throw (v, t) -> `Thrown (v, t)
      | Division_by_zero -> `Div_zero
      | Invalid_argument msg ->
        (* type-confused bytecode (e.g. arithmetic on a reference): a real
           VM's verifier rejects it; at runtime it is a VM error, never a
           crash of the VM process itself *)
        `Vm_error msg
    in
    match outcome with
    | `Done r -> r
    | `Thrown (v, t) -> (
      match find_handler !cur_pc with
      | Some h ->
        pending_exception := (v, t);
        run h.Classes.handler_pc
      | None -> raise (Vm.Java_throw (v, t)))
    | `Div_zero -> (
      match find_handler !cur_pc with
      | Some h ->
        let v, t = Vm.new_string vm "divide by zero" in
        pending_exception := (v, t);
        run h.Classes.handler_pc
      | None -> Vm.throw vm "Ljava/lang/ArithmeticException;" "divide by zero")
    | `Vm_error msg -> Vm.throw vm "Ljava/lang/VirtualMachineError;" msg
  in
  run 0

let invoke_by_name vm cls_name m_name args =
  invoke vm (Vm.find_method vm cls_name m_name) args

(* ------------------------------------------------------------------ *)
(* Reference path: the seed interpreter, kept verbatim as a semantic   *)
(* oracle for the differential tests and as the honest benchmark       *)
(* baseline.  Resolution uses the seed's uncached linear scans, not    *)
(* the memoized vtables/layouts above.                                 *)
(* ------------------------------------------------------------------ *)

let ref_err fmt = Format.kasprintf (fun s -> raise (Vm.Dvm_error s)) fmt

let rec ref_find_method vm cls_name m_name =
  let cls = Vm.find_class vm cls_name in
  match
    List.find_opt (fun m -> m.Classes.m_name = m_name) cls.Classes.c_methods
  with
  | Some m -> m
  | None -> (
    match cls.Classes.c_super with
    | Some super -> ref_find_method vm super m_name
    | None -> ref_err "method %s->%s not found" cls_name m_name)

let rec ref_field_layout vm cls_name =
  let cls = Vm.find_class vm cls_name in
  let inherited =
    match cls.Classes.c_super with Some s -> ref_field_layout vm s | None -> []
  in
  let next = List.length inherited in
  let own =
    List.filteri (fun _ f -> not f.Classes.fd_static) cls.Classes.c_fields
  in
  inherited @ List.mapi (fun i f -> (f.Classes.fd_name, next + i)) own

let ref_field_index vm cls_name f_name =
  match List.assoc_opt f_name (ref_field_layout vm cls_name) with
  | Some i -> i
  | None -> ref_err "field %s->%s not found" cls_name f_name

let ref_instance_size vm cls_name = List.length (ref_field_layout vm cls_name)

let rec invoke_reference vm (m : Classes.method_def) args =
  vm.Vm.counters.Vm.invokes <- vm.Vm.counters.Vm.invokes + 1;
  let expected = Classes.ins_count m in
  if Array.length args <> expected then
    wrong_arity m expected (Array.length args);
  match m.Classes.m_body with
  | Classes.Intrinsic _ | Classes.Native _ -> call_non_bytecode vm m args
  | Classes.Bytecode (code, handlers) ->
    (match vm.Vm.on_invoke with Some f -> f m | None -> ());
    run_bytecode_reference vm m args code handlers

and run_bytecode_reference vm m args code handlers =
  (* TaintDroid stack layout (Fig. 1): parameters land in the highest
     registers; locals occupy the low ones.  Taints sit next to values. *)
  let nregs = max m.Classes.m_registers (Array.length args) in
  let regs = Array.make nregs Dvalue.zero in
  let taints = Array.make nregs Taint.clear in
  let first_in = nregs - Array.length args in
  Array.iteri
    (fun i (v, t) ->
      regs.(first_in + i) <- v;
      taints.(first_in + i) <- t)
    args;
  let track = vm.Vm.track_taint in
  let pending_exception = ref (Dvalue.Null, Taint.clear) in
  let get r = regs.(r) in
  let taint_of r = if track then taints.(r) else Taint.clear in
  let set r v t =
    regs.(r) <- v;
    if track then taints.(r) <- t
  in
  let heap_obj v =
    match v with
    | Dvalue.Obj id -> (
      try Heap.get vm.Vm.heap id
      with Not_found -> Vm.throw vm "Ljava/lang/RuntimeException;" "dangling ref")
    | Dvalue.Null ->
      Vm.throw vm "Ljava/lang/NullPointerException;" "null dereference"
    | Dvalue.Int _ | Dvalue.Long _ | Dvalue.Float _ | Dvalue.Double _ ->
      Vm.throw vm "Ljava/lang/RuntimeException;" "not a reference"
  in
  let cur_pc = ref 0 in
  let rec step pc =
    if pc < 0 || pc >= Array.length code then
      raise (Vm.Dvm_error (Printf.sprintf "pc %d out of range in %s" pc
                             (Classes.qualified_name m)));
    cur_pc := pc;
    vm.Vm.counters.Vm.bytecodes <- vm.Vm.counters.Vm.bytecodes + 1;
    (match vm.Vm.on_bytecode with Some f -> f m code.(pc) | None -> ());
    match code.(pc) with
    | Bytecode.Nop -> step (pc + 1)
    | Bytecode.Const (r, v) ->
      set r v Taint.clear;
      step (pc + 1)
    | Bytecode.Const_string (r, s) ->
      let v, t = Vm.new_string vm s in
      set r v t;
      step (pc + 1)
    | Bytecode.Move (d, s) ->
      set d (get s) (taint_of s);
      step (pc + 1)
    | Bytecode.Move_result r ->
      let v, t = vm.Vm.ret in
      set r v (if track then t else Taint.clear);
      step (pc + 1)
    | Bytecode.Move_exception r ->
      let v, t = !pending_exception in
      set r v (if track then t else Taint.clear);
      step (pc + 1)
    | Bytecode.Return_void ->
      vm.Vm.ret <- (Dvalue.zero, Taint.clear);
      vm.Vm.ret
    | Bytecode.Return r ->
      vm.Vm.ret <- (get r, taint_of r);
      vm.Vm.ret
    | Bytecode.Binop (op, d, a, b) ->
      set d
        (Dvalue.Int (exec_binop op (Dvalue.as_int (get a)) (Dvalue.as_int (get b))))
        (Taint.union (taint_of a) (taint_of b));
      step (pc + 1)
    | Bytecode.Binop_wide (op, d, a, b) ->
      set d
        (Dvalue.Long
           (exec_binop_wide op (Dvalue.as_long (get a)) (Dvalue.as_long (get b))))
        (Taint.union (taint_of a) (taint_of b));
      step (pc + 1)
    | Bytecode.Binop_float (op, d, a, b) ->
      let r = exec_binop_float op (Dvalue.as_float (get a)) (Dvalue.as_float (get b)) in
      set d
        (Dvalue.Float (Int32.float_of_bits (Int32.bits_of_float r)))
        (Taint.union (taint_of a) (taint_of b));
      step (pc + 1)
    | Bytecode.Binop_double (op, d, a, b) ->
      set d
        (Dvalue.Double
           (exec_binop_float op (Dvalue.as_double (get a)) (Dvalue.as_double (get b))))
        (Taint.union (taint_of a) (taint_of b));
      step (pc + 1)
    | Bytecode.Binop_lit (op, d, a, lit) ->
      set d
        (Dvalue.Int (exec_binop op (Dvalue.as_int (get a)) lit))
        (taint_of a);
      step (pc + 1)
    | Bytecode.Unop (op, d, s) ->
      set d (exec_unop op (get s)) (taint_of s);
      step (pc + 1)
    | Bytecode.Cmp_long (d, a, b) ->
      let c = Int64.compare (Dvalue.as_long (get a)) (Dvalue.as_long (get b)) in
      set d (Dvalue.Int (Int32.of_int c)) (Taint.union (taint_of a) (taint_of b));
      step (pc + 1)
    | Bytecode.If (c, a, b, target) ->
      if compare_values c (get a) (get b) then step target else step (pc + 1)
    | Bytecode.Ifz (c, a, target) ->
      let test =
        match c with
        | Bytecode.Eq -> not (Dvalue.truthy (get a))
        | Bytecode.Ne -> Dvalue.truthy (get a)
        | Bytecode.Lt | Bytecode.Ge | Bytecode.Gt | Bytecode.Le ->
          compare_values c (get a) (Dvalue.Int 0l)
      in
      if test then step target else step (pc + 1)
    | Bytecode.Goto target -> step target
    | Bytecode.New_instance (r, cls) ->
      let o = Heap.alloc_instance vm.Vm.heap cls (ref_instance_size vm cls) in
      set r (Dvalue.Obj o.Heap.id) Taint.clear;
      step (pc + 1)
    | Bytecode.New_array (d, n, elem_type) ->
      let size = Int32.to_int (Dvalue.as_int (get n)) in
      if size < 0 then
        Vm.throw vm "Ljava/lang/NegativeArraySizeException;" (string_of_int size);
      let o = Heap.alloc_array vm.Vm.heap elem_type size in
      set d (Dvalue.Obj o.Heap.id) Taint.clear;
      step (pc + 1)
    | Bytecode.Array_length (d, a) ->
      let o = heap_obj (get a) in
      let len =
        match o.Heap.kind with
        | Heap.Array { elems; _ } -> Array.length elems
        | Heap.String s -> String.length s
        | Heap.Instance _ ->
          Vm.throw vm "Ljava/lang/RuntimeException;" "array-length on non-array"
      in
      (* TaintDroid: array length carries the array object's taint. *)
      set d (Dvalue.Int (Int32.of_int len)) (if track then o.Heap.taint else Taint.clear);
      step (pc + 1)
    | Bytecode.Aget (v, a, i) ->
      let o = heap_obj (get a) in
      let idx = Int32.to_int (Dvalue.as_int (get i)) in
      (match o.Heap.kind with
       | Heap.Array { elems; _ } ->
         if idx < 0 || idx >= Array.length elems then
           Vm.throw vm "Ljava/lang/ArrayIndexOutOfBoundsException;"
             (string_of_int idx);
         (* TaintDroid: one taint per array — the whole array's tag flows. *)
         set v elems.(idx)
           (if track then Taint.union o.Heap.taint (taint_of i) else Taint.clear)
       | Heap.String _ | Heap.Instance _ ->
         Vm.throw vm "Ljava/lang/RuntimeException;" "aget on non-array");
      step (pc + 1)
    | Bytecode.Aput (v, a, i) ->
      let o = heap_obj (get a) in
      let idx = Int32.to_int (Dvalue.as_int (get i)) in
      (match o.Heap.kind with
       | Heap.Array { elems; _ } ->
         if idx < 0 || idx >= Array.length elems then
           Vm.throw vm "Ljava/lang/ArrayIndexOutOfBoundsException;"
             (string_of_int idx);
         elems.(idx) <- get v;
         if track then o.Heap.taint <- Taint.union o.Heap.taint (taint_of v)
       | Heap.String _ | Heap.Instance _ ->
         Vm.throw vm "Ljava/lang/RuntimeException;" "aput on non-array");
      step (pc + 1)
    | Bytecode.Iget (v, ob, fref) ->
      let o = heap_obj (get ob) in
      (match o.Heap.kind with
       | Heap.Instance { cls; values; taints = ftaints } ->
         let idx = ref_field_index vm cls fref.Bytecode.f_name in
         set v values.(idx) (if track then ftaints.(idx) else Taint.clear)
       | Heap.String _ | Heap.Array _ ->
         Vm.throw vm "Ljava/lang/RuntimeException;" "iget on non-instance");
      step (pc + 1)
    | Bytecode.Iput (v, ob, fref) ->
      let o = heap_obj (get ob) in
      (match o.Heap.kind with
       | Heap.Instance { cls; values; taints = ftaints } ->
         let idx = ref_field_index vm cls fref.Bytecode.f_name in
         values.(idx) <- get v;
         if track then ftaints.(idx) <- taint_of v
       | Heap.String _ | Heap.Array _ ->
         Vm.throw vm "Ljava/lang/RuntimeException;" "iput on non-instance");
      step (pc + 1)
    | Bytecode.Sget (v, fref) ->
      let cell = Vm.static_ref vm fref.Bytecode.f_class fref.Bytecode.f_name in
      let value, t = !cell in
      set v value (if track then t else Taint.clear);
      step (pc + 1)
    | Bytecode.Sput (v, fref) ->
      let cell = Vm.static_ref vm fref.Bytecode.f_class fref.Bytecode.f_name in
      cell := (get v, taint_of v);
      step (pc + 1)
    | Bytecode.Invoke (kind, mref, arg_regs) ->
      let callee =
        match kind with
        | Bytecode.Static | Bytecode.Direct ->
          ref_find_method vm mref.Bytecode.m_class mref.Bytecode.m_name
        | Bytecode.Virtual -> (
          (* dynamic dispatch on the receiver's class *)
          match arg_regs with
          | this_reg :: _ -> (
            match get this_reg with
            | Dvalue.Obj id -> (
              let o = Heap.get vm.Vm.heap id in
              match o.Heap.kind with
              | Heap.Instance { cls; _ } ->
                ref_find_method vm cls mref.Bytecode.m_name
              | Heap.String _ | Heap.Array _ ->
                ref_find_method vm mref.Bytecode.m_class mref.Bytecode.m_name)
            | Dvalue.Null ->
              Vm.throw vm "Ljava/lang/NullPointerException;"
                (mref.Bytecode.m_class ^ "->" ^ mref.Bytecode.m_name)
            | Dvalue.Int _ | Dvalue.Long _ | Dvalue.Float _ | Dvalue.Double _ ->
              ref_find_method vm mref.Bytecode.m_class mref.Bytecode.m_name)
          | [] -> raise (Vm.Dvm_error "virtual invoke without receiver"))
      in
      let args =
        Array.of_list (List.map (fun r -> (get r, taint_of r)) arg_regs)
      in
      ignore (invoke_reference vm callee args);
      step (pc + 1)
    | Bytecode.Packed_switch (r, first_key, targets) ->
      let v = Int32.to_int (Int32.sub (Dvalue.as_int (get r)) first_key) in
      if v >= 0 && v < Array.length targets then step targets.(v)
      else step (pc + 1)
    | Bytecode.Sparse_switch (r, entries) ->
      let v = Dvalue.as_int (get r) in
      (match Array.find_opt (fun (k, _) -> k = v) entries with
       | Some (_, target) -> step target
       | None -> step (pc + 1))
    | Bytecode.Throw r -> raise (Vm.Java_throw (get r, taint_of r))
    | Bytecode.Check_cast (_, _) -> step (pc + 1)
    | Bytecode.Instance_of (d, r, cls) ->
      let is =
        match get r with
        | Dvalue.Obj id -> (
          match (Heap.get vm.Vm.heap id).Heap.kind with
          | Heap.Instance { cls = c; _ } -> c = cls
          | Heap.String _ -> cls = "Ljava/lang/String;"
          | Heap.Array _ -> false)
        | Dvalue.Null | Dvalue.Int _ | Dvalue.Long _ | Dvalue.Float _
        | Dvalue.Double _ ->
          false
      in
      set d (Dvalue.Int (if is then 1l else 0l)) (taint_of r);
      step (pc + 1)
  in
  let find_handler pc =
    List.find_opt
      (fun h -> pc >= h.Classes.try_start && pc < h.Classes.try_end)
      handlers
  in
  let rec run pc =
    let outcome =
      try `Done (step pc) with
      | Vm.Java_throw (v, t) -> `Thrown (v, t)
      | Division_by_zero -> `Div_zero
      | Invalid_argument msg ->
        (* type-confused bytecode (e.g. arithmetic on a reference): a real
           VM's verifier rejects it; at runtime it is a VM error, never a
           crash of the VM process itself *)
        `Vm_error msg
    in
    match outcome with
    | `Done r -> r
    | `Thrown (v, t) -> (
      match find_handler !cur_pc with
      | Some h ->
        pending_exception := (v, t);
        run h.Classes.handler_pc
      | None -> raise (Vm.Java_throw (v, t)))
    | `Div_zero -> (
      match find_handler !cur_pc with
      | Some h ->
        let v, t = Vm.new_string vm "divide by zero" in
        pending_exception := (v, t);
        run h.Classes.handler_pc
      | None -> Vm.throw vm "Ljava/lang/ArithmeticException;" "divide by zero")
    | `Vm_error msg -> Vm.throw vm "Ljava/lang/VirtualMachineError;" msg
  in
  run 0
