(** Pre-linked, pre-decoded method code — the resolve-once half of the fast
    Dalvik path.

    A link pass ({!of_code}) flattens a method body into an array of
    dispatch-friendly instructions: invoke argument registers become [int
    array]s instead of lists, and every invoke / iget / iput / sget / sput /
    new-instance carries an embedded, initially-empty {e site cache}.  The
    interpreter fills each cache the first time the site executes and reuses
    it while the receiver class repeats (a monomorphic inline cache), so the
    steady state pays no hash lookups and no layout walks.

    Branch targets are already instruction indices in [Bytecode.t]; the link
    pass preserves them 1:1, and keeps the original encoding in [l_src] so
    tracing hooks ([Vm.on_bytecode]) still see [Bytecode.t] values.

    Linked code is {e per-VM}: site caches hold [Classes.method_def]s and
    static-field cells of one VM, so linked bodies must never be shared
    between VMs ([Vm] links at vtable-build time, per VM). *)

module Taint = Ndroid_taint.Taint

type resolved = {
  r_m : Classes.method_def;
  r_argc : int;  (** [Classes.ins_count r_m], cached (hot-path arity check) *)
  r_body : body;
}
(** A resolution-cache entry: a method together with its linked body. *)

and body = Code of t | Not_bytecode

and t = {
  l_src : Bytecode.t array;  (** original code, for [on_bytecode] hooks *)
  l_code : insn array;
  l_handlers : Classes.handler list;
}

and invoke_site = {
  iv_kind : Bytecode.invoke_kind;
  iv_ref : Bytecode.method_ref;
  iv_args : int array;
  iv_argc : int;
  mutable iv_cls : string;
      (** receiver class the cache is valid for (virtual sites); [""] = empty *)
  mutable iv_cache : resolved option;
}

and field_site = {
  fs_ref : Bytecode.field_ref;
  mutable fs_cls : string;  (** receiver class of the cached slot; [""] = empty *)
  mutable fs_idx : int;
}

and static_site = {
  ss_ref : Bytecode.field_ref;
  mutable ss_cell : (Dvalue.t * Taint.t) ref option;  (** resolved once *)
}

and size_site = { ns_cls : string; mutable ns_size : int  (** -1 = unresolved *) }

and insn =
  | Nop
  | Const of int * Dvalue.t
  | Const_string of int * string
  | Move of int * int
  | Move_result of int
  | Move_exception of int
  | Return_void
  | Return of int
  | Binop of Bytecode.binop * int * int * int
  | Binop_wide of Bytecode.binop * int * int * int
  | Binop_float of Bytecode.binop * int * int * int
  | Binop_double of Bytecode.binop * int * int * int
  | Binop_lit of Bytecode.binop * int * int * int32
  | Unop of Bytecode.unop * int * int
  | Cmp_long of int * int * int
  | If of Bytecode.cmp * int * int * int
  | Ifz of Bytecode.cmp * int * int
  | Goto of int
  | New_instance of int * size_site
  | New_array of int * int * string
  | Array_length of int * int
  | Aget of int * int * int
  | Aput of int * int * int
  | Iget of int * int * field_site
  | Iput of int * int * field_site
  | Sget of int * static_site
  | Sput of int * static_site
  | Invoke of invoke_site
  | Throw of int
  | Check_cast of int * string
  | Instance_of of int * int * string
  | Packed_switch of int * int32 * int array
  | Sparse_switch of int * (int32 * int) array

val of_code : Bytecode.t array -> Classes.handler list -> t
(** The link pass: pure, allocates fresh (empty) site caches. *)

val resolve : Classes.method_def -> resolved
(** Link a method's body (fresh caches) and cache its arity. *)
