(** The bytecode interpreter, with TaintDroid's taint propagation built in.

    TaintDroid "tracks the taints of primitive type variables and object
    references according to the logic of each DVM instruction" (paper,
    Sec. II-B).  Every frame carries a taint tag per register, interleaved
    with the values exactly as Fig. 1 lays the stack out; the return value's
    tag lands in the VM's [InterpSaveState] ([Vm.t.ret]).

    Key TaintDroid storage rules reproduced here:
    - arrays and strings carry a {e single} taint for all elements;
    - instance and static fields carry one tag per field;
    - when [Vm.track_taint] is off, tags are neither read nor written
      (the vanilla baseline).

    Two execution paths share these semantics:
    - {!invoke} — the fast path: pre-linked code ({!Linked}), memoized
      vtable/field-layout resolution, monomorphic inline caches at
      invoke/iget/iput sites, and pooled per-depth register frames
      ([Vm.frame]) instead of per-call array allocation;
    - {!invoke_reference} — the original seed interpreter, kept verbatim
      (uncached linear method scans, per-access field-layout rebuilds,
      fresh frames) as the semantic oracle for the differential tests and
      the honest baseline for [bench/main.exe dalvik]. *)

exception Wrong_arity of string
(** Raised when a call supplies the wrong number of arguments. *)

val invoke : Vm.t -> Classes.method_def -> Vm.tval array -> Vm.tval
(** [invoke vm m args] runs a method to completion.  [args] are the input
    registers ([this] first for non-static methods).  Returns the value and
    taint; [Vm.Java_throw] escapes if no handler in [m] catches.  Native
    bodies go through [vm.native_dispatch]; intrinsic bodies through the
    intrinsic table. *)

val invoke_by_name : Vm.t -> string -> string -> Vm.tval array -> Vm.tval
(** Resolve by class and method name, then {!invoke}. *)

val invoke_reference : Vm.t -> Classes.method_def -> Vm.tval array -> Vm.tval
(** The seed interpreter: same observable semantics as {!invoke}, with the
    seed's uncached resolution (per-invoke linear method scans, per-access
    field-layout rebuilds) and fresh register arrays per call.  Nested
    bytecode invokes stay on the reference path. *)
