type method_body =
  | Bytecode of Bytecode.t array * handler list
  | Native of string
  | Intrinsic of string

and handler = { try_start : int; try_end : int; handler_pc : int }

type method_def = {
  m_class : string;
  m_name : string;
  m_shorty : string;
  m_static : bool;
  m_registers : int;
  m_body : method_body;
}

type field_def = { fd_name : string; fd_static : bool }

type class_def = {
  c_name : string;
  c_super : string option;
  c_fields : field_def list;
  c_methods : method_def list;
}

let shorty_params shorty =
  if shorty = "" then []
  else List.init (String.length shorty - 1) (fun i -> shorty.[i + 1])

(* Equivalent to [List.length (shorty_params m.m_shorty)] without building
   the list: this runs once per invoke on the interpreter hot path. *)
let param_count m =
  let n = String.length m.m_shorty in
  if n = 0 then 0 else n - 1
let ins_count m = param_count m + if m.m_static then 0 else 1
let return_type m = if m.m_shorty = "" then 'V' else m.m_shorty.[0]
let qualified_name m = m.m_class ^ "->" ^ m.m_name
