module Taint = Ndroid_taint.Taint

type tval = Dvalue.t * Taint.t

exception Dvm_error of string
exception Java_throw of tval

type counters = {
  mutable bytecodes : int;
  mutable invokes : int;
  mutable native_calls : int;
  mutable jni_env_calls : int;
}

type vtable = {
  vt_exact : (string * int, Linked.resolved) Hashtbl.t;
  vt_by_name : (string, Linked.resolved) Hashtbl.t;
  vt_missing_super : string option;
}

type layout = {
  lay_pairs : (string * int) list;
  lay_index : (string, int) Hashtbl.t;
  lay_size : int;
}

type frame = {
  mutable f_regs : Dvalue.t array;
  mutable f_taints : Taint.t array;
}

type t = {
  classes : (string, Classes.class_def) Hashtbl.t;
  statics : (string * string, tval ref) Hashtbl.t;
  heap : Heap.t;
  intrinsics : (string, t -> tval array -> tval) Hashtbl.t;
  mutable native_dispatch : (t -> Classes.method_def -> tval array -> tval) option;
  mutable track_taint : bool;
  mutable on_bytecode : (Classes.method_def -> Bytecode.t -> unit) option;
  mutable on_invoke : (Classes.method_def -> unit) option;
  mutable ret : tval;
  counters : counters;
  vtables : (string, vtable) Hashtbl.t;
  layouts : (string, layout) Hashtbl.t;
  mutable frames : frame array;
  mutable depth : int;
  mutable link_roots : (Classes.method_def * Linked.resolved) list;
  mutable obs : Ndroid_obs.Ring.t;
}

let err fmt = Format.kasprintf (fun s -> raise (Dvm_error s)) fmt

let create () =
  { classes = Hashtbl.create 64;
    statics = Hashtbl.create 64;
    heap = Heap.create ();
    intrinsics = Hashtbl.create 64;
    native_dispatch = None;
    track_taint = true;
    on_bytecode = None;
    on_invoke = None;
    ret = (Dvalue.zero, Taint.clear);
    counters = { bytecodes = 0; invokes = 0; native_calls = 0; jni_env_calls = 0 };
    vtables = Hashtbl.create 64;
    layouts = Hashtbl.create 64;
    frames = Array.init 16 (fun _ -> { f_regs = [||]; f_taints = [||] });
    depth = 0;
    link_roots = [];
    obs = Ndroid_obs.Ring.disabled }

let define_class vm cls =
  if Hashtbl.mem vm.classes cls.Classes.c_name then
    err "class %s already defined" cls.Classes.c_name;
  Hashtbl.replace vm.classes cls.Classes.c_name cls;
  (* A new class can complete a previously-cut superclass chain (dynamic
     loading), so drop memoized resolution state and rebuild lazily.  Filled
     inline caches in already-linked code stay valid: classes can never be
     redefined, so a successful resolution holds forever. *)
  Hashtbl.reset vm.vtables;
  Hashtbl.reset vm.layouts

let find_class vm name =
  match Hashtbl.find_opt vm.classes name with
  | Some c -> c
  | None -> err "class %s not found" name

(* Merge one method into an existing class, or define the class fresh.
   Used by harnesses to graft framework stubs onto whatever skeleton the
   app's dex already declared; an existing (class, method, signature)
   entry is left alone. *)
let define_method vm ~cls (m : Classes.method_def) =
  match Hashtbl.find_opt vm.classes cls with
  | None ->
    define_class vm
      { Classes.c_name = cls; c_super = None; c_fields = []; c_methods = [ m ] }
  | Some c ->
    let exists =
      List.exists
        (fun (m' : Classes.method_def) ->
          m'.Classes.m_name = m.Classes.m_name
          && m'.Classes.m_shorty = m.Classes.m_shorty
          && m'.Classes.m_static = m.Classes.m_static)
        c.Classes.c_methods
    in
    if not exists then begin
      Hashtbl.replace vm.classes cls
        { c with Classes.c_methods = c.Classes.c_methods @ [ m ] };
      Hashtbl.reset vm.vtables;
      Hashtbl.reset vm.layouts
    end

(* Memoized per-class vtable, replacing the seed's per-invoke linear scan.
   Built by copying the superclass vtable and overriding with own methods
   (first occurrence wins among own methods, matching the seed's
   [List.find_opt] order).  Every bytecode method is linked here, once per
   VM — the resolve-once principle. *)
let rec vtable vm cls_name =
  match Hashtbl.find_opt vm.vtables cls_name with
  | Some v -> v
  | None ->
    let cls = find_class vm cls_name in
    let vt_exact, vt_by_name, vt_missing_super =
      match cls.Classes.c_super with
      | None -> (Hashtbl.create 16, Hashtbl.create 16, None)
      | Some s ->
        if Hashtbl.mem vm.classes s then begin
          let p = vtable vm s in
          (Hashtbl.copy p.vt_exact, Hashtbl.copy p.vt_by_name, p.vt_missing_super)
        end
        else
          (* The chain is cut: resolutions that would have to look past the
             cut report the missing class, like the seed's chain walk did. *)
          (Hashtbl.create 16, Hashtbl.create 16, Some s)
    in
    let own_exact = Hashtbl.create 8 and own_name = Hashtbl.create 8 in
    List.iter
      (fun m ->
        let r = Linked.resolve m in
        let key = (m.Classes.m_name, r.Linked.r_argc) in
        if not (Hashtbl.mem own_exact key) then begin
          Hashtbl.replace own_exact key ();
          Hashtbl.replace vt_exact key r
        end;
        if not (Hashtbl.mem own_name m.Classes.m_name) then begin
          Hashtbl.replace own_name m.Classes.m_name ();
          Hashtbl.replace vt_by_name m.Classes.m_name r
        end)
      cls.Classes.c_methods;
    let v = { vt_exact; vt_by_name; vt_missing_super } in
    Hashtbl.replace vm.vtables cls_name v;
    v

let rec root_name vm cls_name =
  match (find_class vm cls_name).Classes.c_super with
  | Some s when Hashtbl.mem vm.classes s -> root_name vm s
  | Some _ | None -> cls_name

let method_miss vm vt cls_name m_name =
  match vt.vt_missing_super with
  | Some s -> err "class %s not found" s
  | None -> err "method %s->%s not found" (root_name vm cls_name) m_name

let find_method vm cls_name m_name =
  let vt = vtable vm cls_name in
  match Hashtbl.find_opt vt.vt_by_name m_name with
  | Some r -> r.Linked.r_m
  | None -> method_miss vm vt cls_name m_name

let find_method_arity vm cls_name m_name argc =
  let vt = vtable vm cls_name in
  match Hashtbl.find_opt vt.vt_exact (m_name, argc) with
  | Some r -> r
  | None -> (
    (* No overload of that arity: fall back to the name hit so callers
       report a wrong-arity error instead of method-not-found. *)
    match Hashtbl.find_opt vt.vt_by_name m_name with
    | Some r -> r
    | None -> method_miss vm vt cls_name m_name)

(* Memoized flattened field layout, replacing the seed's per-access list
   rebuild. *)
let rec layout vm cls_name =
  match Hashtbl.find_opt vm.layouts cls_name with
  | Some l -> l
  | None ->
    let cls = find_class vm cls_name in
    let inherited =
      match cls.Classes.c_super with
      | Some s -> (layout vm s).lay_pairs
      | None -> []
    in
    let next = List.length inherited in
    let own =
      List.filteri (fun _ f -> not f.Classes.fd_static) cls.Classes.c_fields
    in
    let pairs =
      inherited @ List.mapi (fun i f -> (f.Classes.fd_name, next + i)) own
    in
    let index = Hashtbl.create (List.length pairs) in
    (* Insert back-to-front so the first binding of a name wins, matching
       [List.assoc_opt] on the pair list. *)
    List.iter (fun (n, i) -> Hashtbl.replace index n i) (List.rev pairs);
    let l = { lay_pairs = pairs; lay_index = index; lay_size = List.length pairs } in
    Hashtbl.replace vm.layouts cls_name l;
    l

let field_layout vm cls_name = (layout vm cls_name).lay_pairs

let field_index vm cls_name f_name =
  match Hashtbl.find_opt (layout vm cls_name).lay_index f_name with
  | Some i -> i
  | None -> err "field %s->%s not found" cls_name f_name

let instance_size vm cls_name = (layout vm cls_name).lay_size

let static_ref vm cls_name f_name =
  let key = (cls_name, f_name) in
  match Hashtbl.find_opt vm.statics key with
  | Some r -> r
  | None ->
    let r = ref (Dvalue.zero, Taint.clear) in
    Hashtbl.replace vm.statics key r;
    r

(* Frames for the allocation-free interpreter loop: one reusable
   register/taint pair per call depth, grown on demand and never freed. *)
let frame vm depth =
  if depth >= Array.length vm.frames then begin
    let old = vm.frames in
    let n = max (depth + 1) (2 * Array.length old) in
    vm.frames <-
      Array.init n (fun i ->
          if i < Array.length old then old.(i)
          else { f_regs = [||]; f_taints = [||] })
  end;
  vm.frames.(depth)

(* Linked code for a method invoked from the outside (not through a call
   site).  Prefer the vtable entry when it is this very method; otherwise
   memoize per method identity so repeated top-level invokes of ad-hoc
   methods don't relink every call. *)
let resolved_of_method vm m =
  let rec scan = function
    | [] -> None
    | (m', r) :: rest -> if m' == m then Some r else scan rest
  in
  match scan vm.link_roots with
  | Some r -> r
  | None ->
    let r =
      match
        if Hashtbl.mem vm.classes m.Classes.m_class then
          let vt = vtable vm m.Classes.m_class in
          Hashtbl.find_opt vt.vt_exact (m.Classes.m_name, Classes.ins_count m)
        else None
      with
      | Some r when r.Linked.r_m == m -> r
      | Some _ | None -> Linked.resolve m
    in
    let roots = (m, r) :: vm.link_roots in
    vm.link_roots <-
      (if List.length roots > 64 then List.filteri (fun i _ -> i < 32) roots
       else roots);
    r

let register_intrinsic vm key f = Hashtbl.replace vm.intrinsics key f

let new_string vm ?(taint = Taint.clear) s =
  let o = Heap.alloc_string vm.heap s in
  o.Heap.taint <- taint;
  (Dvalue.Obj o.Heap.id, taint)

let string_of_value vm = function
  | Dvalue.Obj id -> (
    try Heap.string_value vm.heap id
    with Invalid_argument _ | Not_found -> err "not a string object")
  | Dvalue.Null -> err "null string"
  | Dvalue.Int _ | Dvalue.Long _ | Dvalue.Float _ | Dvalue.Double _ ->
    err "not a string object"

let throw vm cls msg =
  (* A Java exception object: one slot for the detail message. *)
  let o = Heap.alloc_instance vm.heap cls 1 in
  let msg_v, msg_t = new_string vm msg in
  (match o.Heap.kind with
   | Heap.Instance { values; taints; _ } ->
     values.(0) <- msg_v;
     taints.(0) <- msg_t
   | Heap.String _ | Heap.Array _ -> assert false);
  raise (Java_throw (Dvalue.Obj o.Heap.id, Taint.clear))
