(** The Dalvik VM state: loaded classes, static fields, the heap, the
    intrinsic (framework-method) table, and the native-dispatch hook that the
    runtime layer points at the JNI call bridge.

    Mirrors the pieces of TaintDroid's modified DVM that matter for taint:
    static fields store their tag next to the value, the per-thread
    [InterpSaveState] holds the return value's taint (paper, Fig. 1), and
    [track_taint] turns the whole propagation machinery on or off (off =
    the "vanilla" baseline of the Fig. 10 experiment).

    Resolution is resolve-once: method lookup goes through memoized
    per-class vtables (built by {!vtable} on first use, every bytecode body
    linked via {!Linked.resolve}), field slots through memoized flattened
    layouts, and the interpreter reuses per-depth register {!frame}s instead
    of allocating fresh arrays per call. *)

module Taint = Ndroid_taint.Taint

type tval = Dvalue.t * Taint.t
(** A value together with its taint tag. *)

exception Dvm_error of string
(** Linkage-style error: missing class, method, field, … *)

exception Java_throw of tval
(** An in-flight Java exception (the thrown object and its taint). *)

type counters = {
  mutable bytecodes : int;  (** bytecode instructions executed *)
  mutable invokes : int;  (** method invocations *)
  mutable native_calls : int;  (** JNI call-bridge crossings *)
  mutable jni_env_calls : int;  (** native→Java JNI function calls *)
}

type vtable = {
  vt_exact : (string * int, Linked.resolved) Hashtbl.t;
      (** (method name, ins count) → resolution along the superclass chain *)
  vt_by_name : (string, Linked.resolved) Hashtbl.t;
      (** first name hit along the chain (JNI-style name-only lookup) *)
  vt_missing_super : string option;
      (** the chain is cut at this undefined superclass, if any *)
}

type layout = {
  lay_pairs : (string * int) list;
  lay_index : (string, int) Hashtbl.t;
  lay_size : int;
}

type frame = {
  mutable f_regs : Dvalue.t array;
  mutable f_taints : Taint.t array;
}
(** A pooled interpreter frame: values and taints interleaved as two flat
    arrays indexed by register (TaintDroid Fig. 1). *)

type t = {
  classes : (string, Classes.class_def) Hashtbl.t;
  statics : (string * string, tval ref) Hashtbl.t;
      (** keyed by (class, field) — a proper pair, immune to name collisions *)
  heap : Heap.t;
  intrinsics : (string, t -> tval array -> tval) Hashtbl.t;
  mutable native_dispatch : (t -> Classes.method_def -> tval array -> tval) option;
  mutable track_taint : bool;
  mutable on_bytecode : (Classes.method_def -> Bytecode.t -> unit) option;
  mutable on_invoke : (Classes.method_def -> unit) option;
      (** fired at every bytecode-method entry — the [dvmInterpret] entry
          point; the always-hook ablation (A2) instruments here *)
  mutable ret : tval;  (** InterpSaveState: last returned value + taint *)
  counters : counters;
  vtables : (string, vtable) Hashtbl.t;  (** memoized method resolution *)
  layouts : (string, layout) Hashtbl.t;  (** memoized field layouts *)
  mutable frames : frame array;  (** interpreter frame pool, one per depth *)
  mutable depth : int;  (** current interpreter call depth *)
  mutable link_roots : (Classes.method_def * Linked.resolved) list;
  mutable obs : Ndroid_obs.Ring.t;
      (** observability hub; {!Ndroid_obs.Ring.disabled} by default, so
          emit calls in the interpreter cost one load and one branch *)
}

val create : unit -> t

val define_class : t -> Classes.class_def -> unit
(** Register a class. Resets the memoized vtables/layouts (a new class can
    complete a previously-cut superclass chain).
    @raise Dvm_error on redefinition. *)

val find_class : t -> string -> Classes.class_def

val define_method : t -> cls:string -> Classes.method_def -> unit
(** Merge a method into an existing class (or define the class fresh if
    absent).  A method with the same name and shorty already present is
    kept — app code wins over harness stubs. *)

val vtable : t -> string -> vtable
(** Memoized per-class method table; links every bytecode body on first
    use. @raise Dvm_error when the class is absent. *)

val find_method : t -> string -> string -> Classes.method_def
(** [find_method vm cls name] resolves along the superclass chain by name
    only (JNI-style lookup). @raise Dvm_error when absent. *)

val find_method_arity : t -> string -> string -> int -> Linked.resolved
(** [find_method_arity vm cls name argc] resolves by name {e and} input
    count, so overloads dispatch correctly; falls back to the name-only hit
    when no overload matches the arity (callers then fail the arity check,
    like the seed did). @raise Dvm_error when absent. *)

val field_layout : t -> string -> (string * int) list
(** Flattened instance-field layout (field name, slot index) including
    superclass fields. *)

val field_index : t -> string -> string -> int
val instance_size : t -> string -> int

val static_ref : t -> string -> string -> tval ref
(** The cell of a static field, creating it (zero, clear) on first use. *)

val frame : t -> int -> frame
(** The pooled frame for a call depth, growing the pool on demand.  The
    caller sizes/clears the register arrays (see [Interp]). *)

val resolved_of_method : t -> Classes.method_def -> Linked.resolved
(** Linked code for a method invoked from outside a call site; reuses the
    vtable entry when possible and memoizes ad-hoc methods by identity. *)

val register_intrinsic : t -> string -> (t -> tval array -> tval) -> unit
(** [register_intrinsic vm "Lcls;->name" f] provides a framework method. *)

val new_string : t -> ?taint:Taint.t -> string -> tval
(** Allocate a Java string; convenience for intrinsics and JNI. *)

val string_of_value : t -> Dvalue.t -> string
(** Chars of a string-object value. @raise Dvm_error otherwise. *)

val throw : t -> string -> string -> 'a
(** [throw vm cls msg] allocates an exception object carrying [msg] and
    raises {!Java_throw}. *)
