module Taint = Ndroid_taint.Taint

type resolved = { r_m : Classes.method_def; r_argc : int; r_body : body }

and body = Code of t | Not_bytecode

and t = {
  l_src : Bytecode.t array;
  l_code : insn array;
  l_handlers : Classes.handler list;
}

and invoke_site = {
  iv_kind : Bytecode.invoke_kind;
  iv_ref : Bytecode.method_ref;
  iv_args : int array;
  iv_argc : int;
  mutable iv_cls : string;
  mutable iv_cache : resolved option;
}

and field_site = {
  fs_ref : Bytecode.field_ref;
  mutable fs_cls : string;
  mutable fs_idx : int;
}

and static_site = {
  ss_ref : Bytecode.field_ref;
  mutable ss_cell : (Dvalue.t * Taint.t) ref option;
}

and size_site = { ns_cls : string; mutable ns_size : int }

and insn =
  | Nop
  | Const of int * Dvalue.t
  | Const_string of int * string
  | Move of int * int
  | Move_result of int
  | Move_exception of int
  | Return_void
  | Return of int
  | Binop of Bytecode.binop * int * int * int
  | Binop_wide of Bytecode.binop * int * int * int
  | Binop_float of Bytecode.binop * int * int * int
  | Binop_double of Bytecode.binop * int * int * int
  | Binop_lit of Bytecode.binop * int * int * int32
  | Unop of Bytecode.unop * int * int
  | Cmp_long of int * int * int
  | If of Bytecode.cmp * int * int * int
  | Ifz of Bytecode.cmp * int * int
  | Goto of int
  | New_instance of int * size_site
  | New_array of int * int * string
  | Array_length of int * int
  | Aget of int * int * int
  | Aput of int * int * int
  | Iget of int * int * field_site
  | Iput of int * int * field_site
  | Sget of int * static_site
  | Sput of int * static_site
  | Invoke of invoke_site
  | Throw of int
  | Check_cast of int * string
  | Instance_of of int * int * string
  | Packed_switch of int * int32 * int array
  | Sparse_switch of int * (int32 * int) array

let link_insn (b : Bytecode.t) : insn =
  match b with
  | Bytecode.Nop -> Nop
  | Bytecode.Const (r, v) -> Const (r, v)
  | Bytecode.Const_string (r, s) -> Const_string (r, s)
  | Bytecode.Move (d, s) -> Move (d, s)
  | Bytecode.Move_result r -> Move_result r
  | Bytecode.Move_exception r -> Move_exception r
  | Bytecode.Return_void -> Return_void
  | Bytecode.Return r -> Return r
  | Bytecode.Binop (op, d, a, b) -> Binop (op, d, a, b)
  | Bytecode.Binop_wide (op, d, a, b) -> Binop_wide (op, d, a, b)
  | Bytecode.Binop_float (op, d, a, b) -> Binop_float (op, d, a, b)
  | Bytecode.Binop_double (op, d, a, b) -> Binop_double (op, d, a, b)
  | Bytecode.Binop_lit (op, d, a, lit) -> Binop_lit (op, d, a, lit)
  | Bytecode.Unop (op, d, s) -> Unop (op, d, s)
  | Bytecode.Cmp_long (d, a, b) -> Cmp_long (d, a, b)
  | Bytecode.If (c, a, b, t) -> If (c, a, b, t)
  | Bytecode.Ifz (c, a, t) -> Ifz (c, a, t)
  | Bytecode.Goto t -> Goto t
  | Bytecode.New_instance (r, cls) ->
    New_instance (r, { ns_cls = cls; ns_size = -1 })
  | Bytecode.New_array (d, n, ty) -> New_array (d, n, ty)
  | Bytecode.Array_length (d, a) -> Array_length (d, a)
  | Bytecode.Aget (v, a, i) -> Aget (v, a, i)
  | Bytecode.Aput (v, a, i) -> Aput (v, a, i)
  | Bytecode.Iget (v, o, f) ->
    Iget (v, o, { fs_ref = f; fs_cls = ""; fs_idx = -1 })
  | Bytecode.Iput (v, o, f) ->
    Iput (v, o, { fs_ref = f; fs_cls = ""; fs_idx = -1 })
  | Bytecode.Sget (v, f) -> Sget (v, { ss_ref = f; ss_cell = None })
  | Bytecode.Sput (v, f) -> Sput (v, { ss_ref = f; ss_cell = None })
  | Bytecode.Invoke (kind, mref, regs) ->
    let args = Array.of_list regs in
    Invoke
      { iv_kind = kind;
        iv_ref = mref;
        iv_args = args;
        iv_argc = Array.length args;
        iv_cls = "";
        iv_cache = None }
  | Bytecode.Throw r -> Throw r
  | Bytecode.Check_cast (r, cls) -> Check_cast (r, cls)
  | Bytecode.Instance_of (d, r, cls) -> Instance_of (d, r, cls)
  | Bytecode.Packed_switch (r, first, targets) ->
    Packed_switch (r, first, targets)
  | Bytecode.Sparse_switch (r, entries) -> Sparse_switch (r, entries)

let of_code code handlers =
  { l_src = code; l_code = Array.map link_insn code; l_handlers = handlers }

let resolve (m : Classes.method_def) =
  let body =
    match m.Classes.m_body with
    | Classes.Bytecode (code, handlers) -> Code (of_code code handlers)
    | Classes.Native _ | Classes.Intrinsic _ -> Not_bytecode
  in
  { r_m = m; r_argc = Classes.ins_count m; r_body = body }
