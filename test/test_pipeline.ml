(* The batch pipeline: canonical JSON, the unified verdict, the sharded
   worker pool (timeouts, crash isolation, fault injection, determinism
   across --jobs) and the on-disk result cache. *)

module T = Ndroid_taint.Taint
module Json = Ndroid_report.Json
module Flow = Ndroid_report.Flow
module Verdict = Ndroid_report.Verdict
module Task = Ndroid_pipeline.Task
module Pool = Ndroid_pipeline.Pool
module Cache = Ndroid_pipeline.Cache
module Analysis = Ndroid_pipeline.Analysis
module Shard_queue = Ndroid_pipeline.Shard_queue
module Wire = Ndroid_pipeline.Wire
module Market = Ndroid_corpus.Market

let flow ?(sink = "Socket.send") ?(site = "Lcom/a;->leak") ?(ctx = Flow.Java_ctx)
    taint =
  { Flow.f_taint = taint; f_sink = sink; f_context = ctx; f_site = site;
    f_hops = [] }

let sample_report =
  { Verdict.r_app = "demo";
    r_analysis = "static";
    r_verdict = Verdict.Flagged [ flow T.imei ];
    r_meta = [ ("jni_sites", Json.Int 2); ("classification", Json.Null) ] }

(* ---- canonical JSON ---- *)

let test_json_golden () =
  (* exact bytes: sorted keys, no whitespace, stable flow encoding — the
     schema `ndroid analyze --json` and the cache commit to *)
  Alcotest.(check string) "canonical report"
    "{\"analysis\":\"static\",\"app\":\"demo\",\"meta\":{\"classification\":null,\"jni_sites\":2},\"result\":{\"flows\":[{\"context\":\"java\",\"sink\":\"Socket.send\",\"site\":\"Lcom/a;->leak\",\"taint\":\"0x400\"}],\"verdict\":\"flagged\"}}"
    (Json.to_string (Verdict.report_to_json sample_report))

let test_json_sorted_keys () =
  let j = Json.Obj [ ("zeta", Json.Int 1); ("alpha", Json.Int 2) ] in
  Alcotest.(check string) "keys sorted" "{\"alpha\":2,\"zeta\":1}"
    (Json.to_string j)

let test_json_roundtrip () =
  let reports =
    [ sample_report;
      { sample_report with Verdict.r_verdict = Verdict.Clean };
      { sample_report with Verdict.r_verdict = Verdict.Crashed "sig 9" };
      { sample_report with Verdict.r_verdict = Verdict.Timeout } ]
  in
  List.iter
    (fun r ->
      let s = Json.to_string (Verdict.report_to_json r) in
      match Result.bind (Json.of_string s) Verdict.report_of_json with
      | Error e -> Alcotest.failf "roundtrip of %s: %s" s e
      | Ok r' ->
        Alcotest.(check bool) "report survives json roundtrip" true
          (Verdict.report_equal r r'))
    reports

let test_verdict_normalize () =
  Alcotest.(check bool) "empty flagged is clean" true
    (Verdict.equal (Verdict.Flagged []) Verdict.Clean);
  let a = flow T.imei and b = flow ~sink:"sendto" T.contacts in
  Alcotest.(check bool) "flow order irrelevant" true
    (Verdict.equal (Verdict.Flagged [ a; b ]) (Verdict.Flagged [ b; a; a ]))

(* ---- wire protocol ---- *)

let test_wire_roundtrip () =
  let r, w = Unix.pipe () in
  Wire.write_frame w "hello";
  Wire.write_frame w "";
  Wire.write_frame w (String.make 10_000 'x');
  Alcotest.(check (option string)) "frame 1" (Some "hello") (Wire.read_frame r);
  Alcotest.(check (option string)) "frame 2" (Some "") (Wire.read_frame r);
  Alcotest.(check (option string)) "frame 3"
    (Some (String.make 10_000 'x'))
    (Wire.read_frame r);
  Unix.close w;
  Alcotest.(check (option string)) "eof" None (Wire.read_frame r);
  Unix.close r

let test_wire_incremental () =
  (* a frame delivered byte-by-byte must come out whole *)
  let r, w = Unix.pipe () in
  let reader = Wire.create_reader () in
  let len = 5 in
  let raw =
    let b = Bytes.create (4 + len) in
    Bytes.set_int32_be b 0 (Int32.of_int len);
    Bytes.blit_string "abcde" 0 b 4 len;
    Bytes.to_string b
  in
  let got = ref [] in
  String.iter
    (fun c ->
      ignore (Unix.write_substring w (String.make 1 c) 0 1);
      match Wire.drain reader r with
      | `Frames fs -> got := !got @ fs
      | `Eof _ -> Alcotest.fail "unexpected eof")
    raw;
  Unix.close w;
  (match Wire.drain reader r with
   | `Eof fs -> got := !got @ fs
   | `Frames _ -> Alcotest.fail "expected eof");
  Unix.close r;
  Alcotest.(check (list string)) "reassembled" [ "abcde" ] !got

(* ---- shard queue ---- *)

let test_shard_queue () =
  let q = Shard_queue.create ~shards:2 [ 0; 1; 2; 3; 4; 5 ] in
  (* shard 0 was dealt 0;2;4 in order *)
  Alcotest.(check (option int)) "own front" (Some 0) (Shard_queue.pop q ~shard:0);
  Alcotest.(check (option int)) "own order" (Some 2) (Shard_queue.pop q ~shard:0);
  Alcotest.(check (option int)) "own tail" (Some 4) (Shard_queue.pop q ~shard:0);
  (* shard 0 is dry: it must steal from shard 1's back half *)
  Alcotest.(check bool) "steal succeeds" true
    (Shard_queue.pop q ~shard:0 <> None);
  Alcotest.(check bool) "steal counted" true (Shard_queue.steals q > 0);
  let rec drain n = if Shard_queue.pop q ~shard:1 <> None then drain (n + 1) else n in
  ignore (drain 0);
  Alcotest.(check int) "all consumed" 0 (Shard_queue.remaining q);
  Alcotest.check_raises "bounded"
    (Invalid_argument "Shard_queue.create: 3 items exceed the 2-task bound")
    (fun () -> ignore (Shard_queue.create ~shards:1 ~capacity:2 [ 1; 2; 3 ]))

(* ---- the pool ---- *)

let slice n = Task.of_market_slice (Market.scaled n)

let with_fault fault id tasks =
  List.map
    (fun (t : Task.t) ->
      if t.Task.t_id = id then { t with Task.t_fault = Some fault } else t)
    tasks

let json_of reports =
  Json.to_string (Verdict.reports_to_json (Array.to_list reports))

let test_pool_matches_inline () =
  let tasks = slice 300 in
  let inline = Pool.run_inline tasks in
  let pooled, stats = Pool.run (Pool.config ~jobs:4 ()) tasks in
  Alcotest.(check string) "jobs 4 bit-identical to inline" (json_of inline)
    (json_of pooled);
  Alcotest.(check int) "all from workers" 300 stats.Pool.s_from_workers

let test_pool_timeout () =
  let tasks = with_fault Task.Hang 2 (slice 64) in
  let reports, stats =
    Pool.run (Pool.config ~jobs:2 ~timeout:0.3 ()) tasks
  in
  Alcotest.(check int) "one timeout" 1 stats.Pool.s_timeouts;
  (match reports.(2).Verdict.r_verdict with
   | Verdict.Timeout -> ()
   | v -> Alcotest.failf "expected timeout, got %a" Verdict.pp v);
  Alcotest.(check int) "every app answered" 64 (Array.length reports);
  Array.iteri
    (fun i r ->
      if i <> 2 then
        Alcotest.(check bool)
          (Printf.sprintf "app %d unaffected" i)
          false
          (r.Verdict.r_verdict = Verdict.Timeout))
    reports

let test_pool_crash_respawn () =
  let tasks = with_fault Task.Crash 1 (slice 64) in
  let reports, stats = Pool.run (Pool.config ~jobs:2 ()) tasks in
  (match reports.(1).Verdict.r_verdict with
   | Verdict.Crashed why ->
     Alcotest.(check string) "deterministic crash reason"
       "worker exited with status 66" why
   | v -> Alcotest.failf "expected crash, got %a" Verdict.pp v);
  Alcotest.(check int) "one crash" 1 stats.Pool.s_crashed;
  Alcotest.(check bool) "worker respawned" true (stats.Pool.s_respawns >= 1);
  (* the crash cost exactly one app: everything else has a real verdict *)
  Array.iteri
    (fun i r ->
      if i <> 1 then
        match r.Verdict.r_verdict with
        | Verdict.Crashed _ | Verdict.Timeout ->
          Alcotest.failf "app %d lost to the crash" i
        | _ -> ())
    reports

let test_pool_injected_kill () =
  let tasks = slice 64 in
  let reports, stats =
    Pool.run (Pool.config ~jobs:2 ~kill_worker_after:5 ()) tasks
  in
  Alcotest.(check int) "kill injected" 1 stats.Pool.s_injected_kills;
  Alcotest.(check int) "no result lost" 64 (Array.length reports);
  Array.iter
    (fun r ->
      Alcotest.(check bool) "placeholder never leaks" false
        (r.Verdict.r_app = "?"))
    reports;
  (* at most the victim's in-flight app crashes; determinism aside, the
     sweep must account for every app *)
  Alcotest.(check bool) "at most one collateral verdict" true
    (stats.Pool.s_crashed <= 1)

let with_temp_cache f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ndroid-test-cache-%d-%d" (Unix.getpid ())
         (Random.int 100000))
  in
  Fun.protect
    ~finally:(fun () ->
      (match Sys.readdir dir with
       | names ->
         Array.iter
           (fun n ->
             try Sys.remove (Filename.concat dir n) with Sys_error _ -> ())
           names
       | exception Sys_error _ -> ());
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> f ~dir (Cache.create ~dir))

let test_cache_hit_miss () =
  with_temp_cache (fun ~dir:_ cache ->
      let tasks = slice 64 in
      let cold = Pool.run_inline ~cache tasks in
      Alcotest.(check int) "cold run misses everything" 64 (Cache.misses cache);
      Alcotest.(check int) "cold run hits nothing" 0 (Cache.hits cache);
      let warm = Pool.run_inline ~cache tasks in
      Alcotest.(check int) "warm run hits everything" 64 (Cache.hits cache);
      Alcotest.(check string) "cached verdicts identical" (json_of cold)
        (json_of warm))

let test_cache_feeds_pool () =
  with_temp_cache (fun ~dir:_ cache ->
      let tasks = slice 64 in
      let cold, _ = Pool.run (Pool.config ~jobs:2 ~cache ()) tasks in
      let warm, stats = Pool.run (Pool.config ~jobs:2 ~cache ()) tasks in
      Alcotest.(check int) "warm pool run is all cache" 64
        stats.Pool.s_cache_hits;
      Alcotest.(check int) "no worker work left" 0 stats.Pool.s_from_workers;
      Alcotest.(check string) "identical bytes" (json_of cold) (json_of warm))

let test_cache_corrupt_entry () =
  with_temp_cache (fun ~dir cache ->
      let task = List.hd (slice 1) in
      let key = Analysis.digest task in
      Cache.store cache ~key (Analysis.run task);
      Alcotest.(check bool) "stored entry readable" true
        (Cache.find cache ~key <> None);
      (* truncate the entry behind the cache's back: must become a miss,
         and a fresh store must repair it *)
      let path = Filename.concat dir (key ^ ".json") in
      let oc = open_out_bin path in
      output_string oc "{\"analysis\":";
      close_out oc;
      Alcotest.(check bool) "torn entry is a miss" true
        (Cache.find cache ~key = None);
      Cache.store cache ~key (Analysis.run task);
      Alcotest.(check bool) "overwritten entry readable again" true
        (Cache.find cache ~key <> None))

let test_digest_sensitivity () =
  let t = List.hd (slice 4) in
  let d_static = Analysis.digest t in
  let d_dynamic = Analysis.digest { t with Task.t_mode = Task.Dynamic } in
  Alcotest.(check bool) "mode changes the key" true (d_static <> d_dynamic);
  let t' = List.nth (slice 4) 1 in
  Alcotest.(check bool) "app changes the key" true
    (d_static <> Analysis.digest t')

let suite =
  [ Alcotest.test_case "json: golden report bytes" `Quick test_json_golden;
    Alcotest.test_case "json: object keys sorted" `Quick test_json_sorted_keys;
    Alcotest.test_case "json: report roundtrip" `Quick test_json_roundtrip;
    Alcotest.test_case "verdict: normalization" `Quick test_verdict_normalize;
    Alcotest.test_case "wire: frame roundtrip" `Quick test_wire_roundtrip;
    Alcotest.test_case "wire: byte-by-byte reassembly" `Quick
      test_wire_incremental;
    Alcotest.test_case "queue: shard order and stealing" `Quick
      test_shard_queue;
    Alcotest.test_case "pool: jobs 4 equals inline" `Quick
      test_pool_matches_inline;
    Alcotest.test_case "pool: hung app records timeout" `Quick
      test_pool_timeout;
    Alcotest.test_case "pool: crash isolates and respawns" `Quick
      test_pool_crash_respawn;
    Alcotest.test_case "pool: injected kill loses nothing" `Quick
      test_pool_injected_kill;
    Alcotest.test_case "cache: inline hit/miss accounting" `Quick
      test_cache_hit_miss;
    Alcotest.test_case "cache: warm pool skips workers" `Quick
      test_cache_feeds_pool;
    Alcotest.test_case "cache: corrupt entry is a miss" `Quick
      test_cache_corrupt_entry;
    Alcotest.test_case "cache: digests separate modes and apps" `Quick
      test_digest_sensitivity ]
