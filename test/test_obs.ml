(* The observability subsystem: ring wraparound, Chrome trace export
   balance, metrics merging, flow provenance on every bundled detection
   app, and the pool's sweep-wide metrics (including time charged to
   crashed/timed-out apps). *)

module Ring = Ndroid_obs.Ring
module Event = Ndroid_obs.Event
module Export = Ndroid_obs.Export
module Metrics = Ndroid_obs.Metrics
module Json = Ndroid_report.Json
module Flow = Ndroid_report.Flow
module Verdict = Ndroid_report.Verdict
module H = Ndroid_apps.Harness
module Registry = Ndroid_apps.Registry
module Task = Ndroid_pipeline.Task
module Pool = Ndroid_pipeline.Pool
module Analysis = Ndroid_pipeline.Analysis
module Market = Ndroid_corpus.Market

(* ---- ring ---- *)

(* Emit [n] log events into a capacity-[cap] ring: the window must hold
   the newest [min n cap] events in order, with contiguous sequence
   numbers ending at [n - 1], whatever the wraparound count. *)
let prop_ring_wraparound =
  QCheck.Test.make ~name:"ring window survives wraparound" ~count:200
    QCheck.(pair (int_range 16 64) (int_range 0 300))
    (fun (cap, n) ->
      let ring = Ring.create ~capacity:cap () in
      for i = 0 to n - 1 do
        Ring.emit_log ring (string_of_int i)
      done;
      let cap = Ring.capacity ring in
      let seqs = List.rev (Ring.fold (fun acc r -> r.Event.e_seq :: acc) [] ring) in
      let expect = List.init (min n cap) (fun i -> max 0 (n - cap) + i) in
      Ring.total ring = n && Ring.size ring = min n cap && seqs = expect)

let test_ring_disabled () =
  let t0 = Ring.total Ring.disabled in
  Ring.emit_log Ring.disabled "dropped";
  Ring.emit_invoke Ring.disabled "Lx;->m";
  Alcotest.(check int) "disabled ring records nothing" t0
    (Ring.total Ring.disabled)

let test_ring_tracing_gate () =
  let ring = Ring.create ~capacity:64 () in
  Ring.emit_insn ring ~addr:0x1000 Event.dummy_insn;
  Alcotest.(check int) "insn gated off without tracing" 0 (Ring.total ring);
  Ring.set_tracing ring true;
  Ring.emit_insn ring ~addr:0x1000 Event.dummy_insn;
  Alcotest.(check int) "insn recorded under tracing" 1 (Ring.total ring)

(* ---- chrome export ---- *)

(* A random interleaving of span begins/ends and instants, chopped by ring
   wraparound: the exporter must still emit, per lane, a balanced B/E
   sequence that never closes a span it hasn't opened. *)
let chrome_emitters : (Ring.t -> unit) array =
  [| (fun r -> Ring.emit_invoke r "La;->f");
     (fun r -> Ring.emit_return r "La;->f");
     (fun r -> Ring.emit_jni_begin r ~name:"La;->n" ~direction:"java->native" ~taint:0);
     (fun r -> Ring.emit_jni_end r ~name:"La;->n" ~direction:"java->native" ~taint:2);
     (fun r -> Ring.emit_gc_begin r);
     (fun r -> Ring.emit_gc_end r);
     (fun r -> Ring.emit_log r "line");
     (fun r -> Ring.emit_taint_reg r ~reg:3 ~taint:4);
     (fun r -> Ring.emit_sink_begin r ~sink:"send");
     (fun r -> Ring.emit_sink_end r ~sink:"send") |]

let prop_chrome_balanced =
  QCheck.Test.make ~name:"chrome export balances B/E per lane" ~count:150
    QCheck.(pair (int_range 16 40) (list_of_size Gen.(int_range 0 200)
                                      (int_bound (Array.length chrome_emitters - 1))))
    (fun (cap, picks) ->
      let ring = Ring.create ~capacity:cap ~tracing:true () in
      List.iter (fun i -> chrome_emitters.(i) ring) picks;
      let events = Export.chrome_events ring in
      let depth = Hashtbl.create 8 in
      List.for_all
        (fun j ->
          let field k = Json.member k j in
          let tid =
            match Option.bind (field "tid") Json.int with
            | Some t -> t
            | None -> -1
          in
          let d = Option.value ~default:0 (Hashtbl.find_opt depth tid) in
          match Option.bind (field "ph") Json.str with
          | Some "B" ->
            Hashtbl.replace depth tid (d + 1);
            true
          | Some "E" ->
            Hashtbl.replace depth tid (d - 1);
            d > 0
          | Some "i" -> true
          | _ -> false)
        events
      && Hashtbl.fold (fun _ d ok -> ok && d = 0) depth true)

let test_chrome_document_shape () =
  let ring = Ring.create ~capacity:32 () in
  Ring.emit_jni_begin ring ~name:"La;->n" ~direction:"java->native" ~taint:0;
  Ring.emit_jni_end ring ~name:"La;->n" ~direction:"java->native" ~taint:0;
  match Json.of_string (Export.to_chrome_string ring) with
  | Error e -> Alcotest.failf "chrome output unparseable: %s" e
  | Ok doc ->
    (match Option.bind (Json.member "traceEvents" doc) Json.list with
     | Some (_ :: _) -> ()
     | _ -> Alcotest.fail "no traceEvents array");
    Alcotest.(check bool) "displayTimeUnit present" true
      (Json.member "displayTimeUnit" doc <> None)

let test_jsonl_lines () =
  let ring = Ring.create ~capacity:32 () in
  Ring.emit_source ring ~name:"getDeviceId" ~cls:"Lt;" ~addr:0x4a0 ~taint:0x400;
  Ring.emit_taint_mem ring ~addr:0x2a000000 ~taint:0x400;
  let lines =
    String.split_on_char '\n' (Export.to_jsonl_string ring)
    |> List.filter (fun l -> String.trim l <> "")
  in
  Alcotest.(check int) "one line per event" (Ring.size ring) (List.length lines);
  List.iter
    (fun l ->
      match Json.of_string l with
      | Error e -> Alcotest.failf "bad jsonl line %s: %s" l e
      | Ok j ->
        Alcotest.(check bool) "line has kind" true (Json.member "kind" j <> None))
    lines

(* ---- flow-log shim ---- *)

let test_flow_log_shim () =
  let log = Ndroid_core.Flow_log.create () in
  Ndroid_core.Flow_log.recordf log "JNI %s Begin" "Lcom/a;->f";
  Ring.emit_taint_reg (Ndroid_core.Flow_log.ring log) ~reg:2 ~taint:0x400;
  Ring.emit_invoke (Ndroid_core.Flow_log.ring log) "La;->m";
  (* typed events render into the legacy vocabulary; spans don't render *)
  Alcotest.(check int) "renderable count" 2 (Ndroid_core.Flow_log.count log);
  Alcotest.(check bool) "legacy line" true
    (Ndroid_core.Flow_log.matching log "JNI Lcom/a;->f Begin" <> []);
  Alcotest.(check bool) "taint assign line" true
    (Ndroid_core.Flow_log.matching log "t(r2) :=" <> [])

(* ---- metrics ---- *)

let test_metrics_merge () =
  let a = Metrics.create () and b = Metrics.create () in
  Metrics.add (Metrics.counter a "bytecodes") 10;
  Metrics.add (Metrics.counter b "bytecodes") 32;
  Metrics.observe_int (Metrics.histogram a "task_bytecodes") 10;
  Metrics.observe_int (Metrics.histogram b "task_bytecodes") 32;
  Metrics.observe (Metrics.histogram b "task_seconds") 0.25;
  Metrics.merge_json a (Metrics.to_json b);
  Alcotest.(check int) "counter summed" 42
    (Metrics.value (Metrics.counter a "bytecodes"));
  Alcotest.(check int) "histogram counts summed" 2
    (Metrics.hist_count (Metrics.histogram a "task_bytecodes"));
  Alcotest.(check int) "new histogram arrives whole" 1
    (Metrics.hist_count (Metrics.histogram a "task_seconds"))

(* ---- provenance ---- *)

let dynamic_task name =
  { Task.t_id = 0; t_subject = Task.Bundled name; t_mode = Task.Dynamic;
    t_fault = None }

(* Every bundled app that flags under the full dynamic analysis must
   explain each flow: a non-empty ordered hop chain that ends at the sink
   and crosses the JNI boundary at least once (the paper's Figs. 6-9
   narrative, reconstructed from the event stream). *)
let test_provenance_every_detection_app () =
  let flagged = ref 0 in
  List.iter
    (fun (app : H.app) ->
      let ring = Ring.create ~capacity:16384 () in
      let report = Analysis.run ~obs:ring (dynamic_task app.H.app_name) in
      List.iter
        (fun (f : Flow.t) ->
          incr flagged;
          let kinds = List.map (fun h -> h.Flow.h_kind) f.Flow.f_hops in
          if kinds = [] then
            Alcotest.failf "%s: flow %s has no provenance" app.H.app_name
              f.Flow.f_sink;
          Alcotest.(check string)
            (app.H.app_name ^ ": chain ends at the sink")
            "sink"
            (List.nth kinds (List.length kinds - 1));
          Alcotest.(check bool)
            (app.H.app_name ^ ": chain crosses JNI")
            true
            (List.mem "jni" kinds);
          Alcotest.(check bool)
            (app.H.app_name ^ ": chain starts at a source or a crossing")
            true
            (match kinds with
             | "source" :: _ | "jni" :: _ -> true
             | _ -> false))
        (Verdict.flows report.Verdict.r_verdict))
    Registry.all;
  (* the detection matrix has real positives; an empty loop proves nothing *)
  Alcotest.(check bool) "several apps flagged" true (!flagged >= 5)

let test_flow_json_provenance_roundtrip () =
  let flow hops =
    { Flow.f_taint = Ndroid_taint.Taint.imei; f_sink = "Socket.send";
      f_context = Flow.Java_ctx; f_site = "evil.example"; f_hops = hops }
  in
  let hops =
    [ { Flow.h_kind = "source"; h_site = "Lt;.getDeviceId@0x4a000000" };
      { Flow.h_kind = "jni"; h_site = "La;->n (java->native)" };
      { Flow.h_kind = "sink"; h_site = "Socket.send -> evil.example" } ]
  in
  List.iter
    (fun f ->
      let s = Json.to_string (Flow.to_json f) in
      match Result.bind (Json.of_string s) Flow.of_json with
      | Error e -> Alcotest.failf "flow roundtrip %s: %s" s e
      | Ok f' ->
        Alcotest.(check bool) "hops survive roundtrip" true
          (f.Flow.f_hops = f'.Flow.f_hops))
    [ flow hops; flow [] ];
  (* provenance-free flows keep the seed's exact JSON shape *)
  Alcotest.(check bool) "no provenance key when empty" true
    (Json.member "provenance" (Flow.to_json (flow [])) = None)

(* ---- live streaming: throttle, tap, codec ---- *)

module Stream = Ndroid_obs.Stream

let stream_kinds =
  [| Event.K_invoke; Event.K_return; Event.K_jni_begin; Event.K_log;
     Event.K_taint_reg; Event.K_source; Event.K_sink |]

let mk_event i (n, k) =
  { Stream.ev_seq = i; ev_kind = stream_kinds.(k);
    ev_name = "m" ^ string_of_int n; ev_detail = ""; ev_addr = 0;
    ev_taint = 0; ev_insn = "" }

let throttle_gen =
  QCheck.(pair (int_range 1 40)
            (list_of_size Gen.(int_range 0 250)
               (pair (int_bound 3)
                  (int_bound (Array.length stream_kinds - 1)))))

let run_throttle (window, picks) =
  let events = List.mapi mk_event picks in
  let th = Stream.throttle ~window in
  let kept =
    List.rev
      (List.fold_left
         (fun acc e -> if Stream.admit th e then e :: acc else acc)
         [] events)
  in
  (events, th, kept)

(* Throttling must keep the stream representative, not just smaller: for
   every input event — kept or suppressed — some survivor with the same
   (method, kind) key sits within one window of it. *)
let prop_throttle_window =
  QCheck.Test.make ~name:"throttle: a survivor within every window"
    ~count:300 throttle_gen
    (fun case ->
      let events, _, kept = run_throttle case in
      let window = fst case in
      List.for_all
        (fun (e : Stream.event) ->
          List.exists
            (fun (e' : Stream.event) ->
              e'.Stream.ev_name = e.Stream.ev_name
              && e'.Stream.ev_kind = e.Stream.ev_kind
              && e'.Stream.ev_seq <= e.Stream.ev_seq
              && e.Stream.ev_seq - e'.Stream.ev_seq < window)
            kept)
        events)

(* Source and sink events are the verdict-grade facts; no window may ever
   deduplicate one away. *)
let prop_throttle_terminal =
  QCheck.Test.make ~name:"throttle: terminal kinds always pass" ~count:300
    throttle_gen
    (fun case ->
      let events, _, kept = run_throttle case in
      let terminals l =
        List.length
          (List.filter (fun e -> Stream.terminal e.Stream.ev_kind) l)
      in
      terminals events = terminals kept)

(* Shedding is accounted, never silent: the dropped counter is exactly the
   events admit refused. *)
let prop_throttle_dropped_exact =
  QCheck.Test.make ~name:"throttle: dropped counts the suppressed exactly"
    ~count:300 throttle_gen
    (fun case ->
      let events, th, kept = run_throttle case in
      Stream.dropped th = List.length events - List.length kept)

let test_tap_wraparound_accounting () =
  let ring = Ring.create ~capacity:16 () in
  let cap = Ring.capacity ring in
  let tap = Stream.tap () in
  for i = 0 to 9 do
    Ring.emit_log ring (string_of_int i)
  done;
  Alcotest.(check int) "first drain sees everything" 10
    (List.length (Stream.drain tap ring));
  Alcotest.(check int) "nothing missed yet" 0 (Stream.tap_missed tap);
  Alcotest.(check int) "nothing overwritten yet" 0 (Ring.overwritten ring);
  for i = 0 to (3 * cap) - 1 do
    Ring.emit_log ring (string_of_int i)
  done;
  let second = Stream.drain tap ring in
  Alcotest.(check int) "drain bounded by capacity" cap (List.length second);
  Alcotest.(check int) "reclaimed prefix counted as missed" (2 * cap)
    (Stream.tap_missed tap);
  Alcotest.(check int) "ring counts every overwrite" (10 + (2 * cap))
    (Ring.overwritten ring);
  (* a cleared ring restarts the seq clock: the cursor resets, the
     monotonic counters do not *)
  Ring.clear ring;
  Alcotest.(check int) "overwritten survives clear" (10 + (2 * cap))
    (Ring.overwritten ring);
  Ring.emit_log ring "fresh";
  Alcotest.(check int) "cleared ring restarts the cursor" 1
    (List.length (Stream.drain tap ring));
  Alcotest.(check int) "a restart is not loss" (2 * cap)
    (Stream.tap_missed tap)

(* Satellite 6: one codec.  A `--trace` JSONL file line and a streamed
   event for the same ring cell must be byte-identical. *)
let test_stream_codec_matches_jsonl () =
  let ring = Ring.create ~capacity:64 ~tracing:true () in
  Ring.emit_source ring ~name:"getDeviceId" ~cls:"Lt;" ~addr:0x4a0
    ~taint:0x400;
  Ring.emit_invoke ring "La;->f";
  Ring.emit_jni_begin ring ~name:"La;->n" ~direction:"java->native"
    ~taint:0x2;
  Ring.emit_insn ring ~addr:0x1000 Event.dummy_insn;
  Ring.emit_taint_mem ring ~addr:0x2a000000 ~taint:0x400;
  Ring.emit_log ring "line";
  Ring.emit_sink_begin ring ~sink:"send";
  Ring.emit_sink_end ring ~sink:"send";
  Ring.emit_jni_end ring ~name:"La;->n" ~direction:"java->native" ~taint:0x2;
  let file_lines =
    String.split_on_char '\n' (Export.to_jsonl_string ring)
    |> List.filter (fun l -> String.trim l <> "")
  in
  let stream_lines =
    List.map
      (fun ev -> Json.to_string (Stream.event_json ev))
      (Stream.drain (Stream.tap ()) ring)
  in
  Alcotest.(check (list string)) "stream lines byte-equal file lines"
    file_lines stream_lines

let prop_event_codec_roundtrip =
  QCheck.Test.make ~name:"stream codec roundtrips every kind" ~count:300
    QCheck.(quad small_nat
              (int_bound (List.length Event.all_kinds - 1))
              printable_string
              (pair (int_bound 0xfffff) (int_bound 0xfff)))
    (fun (seq, ki, name, (addr, taint)) ->
      let ev =
        { Stream.ev_seq = seq; ev_kind = List.nth Event.all_kinds ki;
          ev_name = name; ev_detail = ""; ev_addr = addr; ev_taint = taint;
          ev_insn = "" }
      in
      match Stream.event_of_json (Stream.event_json ev) with
      | Ok ev' -> ev' = ev
      | Error _ -> false)

(* ---- pool metrics ---- *)

let counter_of stats name =
  Option.bind (Json.member "counters" stats.Pool.s_metrics) (Json.member name)
  |> Fun.flip Option.bind Json.int
  |> Option.value ~default:0

let hist_count_of stats name =
  Option.bind (Json.member "histograms" stats.Pool.s_metrics)
    (Json.member name)
  |> Fun.flip Option.bind (Json.member "count")
  |> Fun.flip Option.bind Json.int
  |> Option.value ~default:0

let test_pool_metrics_cover_timeouts () =
  let tasks =
    List.map
      (fun (t : Task.t) ->
        if t.Task.t_id = 1 then { t with Task.t_fault = Some Task.Hang } else t)
      (Task.of_market_slice (Market.scaled 24))
  in
  let total = List.length tasks in
  let _, stats = Pool.run (Pool.config ~jobs:2 ~timeout:0.3 ()) tasks in
  Alcotest.(check int) "timeout recorded" 1 stats.Pool.s_timeouts;
  Alcotest.(check int) "worker_timeouts counter" 1
    (counter_of stats "worker_timeouts");
  Alcotest.(check int) "every app in the tasks counter" total
    (counter_of stats "tasks" + counter_of stats "cache_hits");
  (* the satellite fix: the hung app's lost wall time is charged to the
     sweep's analysis seconds and its task lands in the latency histogram *)
  Alcotest.(check int) "task_seconds histogram covers the timeout" total
    (hist_count_of stats "task_seconds");
  Alcotest.(check bool) "lost time charged" true
    (stats.Pool.s_analyze_cpu >= 0.25)

let suite =
  [ QCheck_alcotest.to_alcotest prop_ring_wraparound;
    Alcotest.test_case "ring: disabled instance inert" `Quick
      test_ring_disabled;
    Alcotest.test_case "ring: tracing gates instruction events" `Quick
      test_ring_tracing_gate;
    QCheck_alcotest.to_alcotest prop_chrome_balanced;
    Alcotest.test_case "chrome: document shape" `Quick
      test_chrome_document_shape;
    Alcotest.test_case "jsonl: one parseable object per event" `Quick
      test_jsonl_lines;
    Alcotest.test_case "flow-log: shim renders legacy lines" `Quick
      test_flow_log_shim;
    Alcotest.test_case "metrics: registries merge" `Quick test_metrics_merge;
    QCheck_alcotest.to_alcotest prop_throttle_window;
    QCheck_alcotest.to_alcotest prop_throttle_terminal;
    QCheck_alcotest.to_alcotest prop_throttle_dropped_exact;
    Alcotest.test_case "stream: tap accounts wraparound and clear" `Quick
      test_tap_wraparound_accounting;
    Alcotest.test_case "stream: codec byte-equal to jsonl export" `Quick
      test_stream_codec_matches_jsonl;
    QCheck_alcotest.to_alcotest prop_event_codec_roundtrip;
    Alcotest.test_case "provenance: every detection app explained" `Quick
      test_provenance_every_detection_app;
    Alcotest.test_case "provenance: flow json roundtrip" `Quick
      test_flow_json_provenance_roundtrip;
    Alcotest.test_case "pool: metrics cover crashed and timed-out apps" `Quick
      test_pool_metrics_cover_timeouts ]
