(* The analysis service: the typed protocol, the service facade, and the
   daemon — request/verdict parity with batch analysis, per-client
   fairness, overload shedding, and surviving worker death. *)

module Json = Ndroid_report.Json
module Verdict = Ndroid_report.Verdict
module Task = Ndroid_pipeline.Task
module Pool = Ndroid_pipeline.Pool
module Cache = Ndroid_pipeline.Cache
module Analysis = Ndroid_pipeline.Analysis
module Shard_queue = Ndroid_pipeline.Shard_queue
module Wire = Ndroid_pipeline.Wire
module Proto = Ndroid_pipeline.Proto
module Server = Ndroid_pipeline.Server
module Market = Ndroid_corpus.Market
module Stream = Ndroid_obs.Stream
module Event = Ndroid_obs.Event

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec at i = i + n <= m && (String.sub s i n = affix || at (i + 1)) in
  n = 0 || at 0

let slice n = Task.of_market_slice (Market.scaled n)

let with_fault fault tasks =
  List.map (fun (t : Task.t) -> { t with Task.t_fault = Some fault }) tasks

let json_of reports =
  Json.to_string (Verdict.reports_to_json (Array.to_list reports))

(* ---- protocol ---- *)

let strip_length frame =
  (* [Proto.to_frame] returns complete wire bytes; [of_frame] takes the
     payload as the reader returns it, without the 4-byte length *)
  let s = Bytes.to_string frame in
  String.sub s 4 (String.length s - 4)

let test_proto_roundtrip () =
  let subject = (List.hd (slice 8)).Task.t_subject in
  let report =
    { Verdict.r_app = "app-0"; r_analysis = "static"; r_verdict = Verdict.Clean;
      r_meta = [ ("jni_sites", Json.Int 1) ] }
  in
  let messages =
    [ Proto.Submit
        { sb_req = 3; sb_subject = subject; sb_mode = Task.Hybrid;
          sb_deadline = Some 1.5; sb_fault = Some Task.Crash;
          sb_trace = false };
      Proto.Submit
        { sb_req = 0; sb_subject = Task.Bundled "case1"; sb_mode = Task.Static;
          sb_deadline = None; sb_fault = None; sb_trace = true };
      Proto.Verdict
        { vd_req = 7; vd_cached = true; vd_seconds = 0.25; vd_report = report };
      Proto.Progress { pg_req = 2; pg_state = "queued"; pg_depth = 5 };
      Proto.Shed { sh_req = 9; sh_reason = "queue at capacity" };
      Proto.Subscribe
        { su_cats = [ "jni"; "taint" ]; su_app = Some "case.*";
          su_window = 4096 };
      Proto.Subscribe { su_cats = []; su_app = None; su_window = 0 };
      Proto.Trace
        { tc_req = -1; tc_app = "case1";
          tc_events =
            [ { Stream.ev_seq = 0; ev_kind = Event.K_jni_begin;
                ev_name = "La;->n"; ev_detail = "java->native"; ev_addr = 0;
                ev_taint = 2; ev_insn = "" };
              { Stream.ev_seq = 5; ev_kind = Event.K_log; ev_name = "line";
                ev_detail = ""; ev_addr = 0; ev_taint = 0; ev_insn = "" } ];
          tc_dropped = 3; tc_lost = 1 };
      Proto.Trace
        { tc_req = 2; tc_app = "case2"; tc_events = []; tc_dropped = 0;
          tc_lost = 7 };
      Proto.Error "bad frame" ]
  in
  List.iter
    (fun m ->
      match Proto.of_frame (strip_length (Proto.to_frame m)) with
      | Error e -> Alcotest.failf "roundtrip: %s" e
      | Ok m' ->
        Alcotest.(check bytes) "message survives the wire" (Proto.to_frame m)
          (Proto.to_frame m'))
    messages

let test_proto_version_mismatch () =
  (* a frame from a binary one protocol generation ahead must be one
     decisive error, not a misparse *)
  let alien =
    Printf.sprintf "%c%c{}" (Char.chr (Wire.protocol_version + 1)) 'V'
  in
  (match Proto.of_frame alien with
   | Ok _ -> Alcotest.fail "alien version accepted"
   | Error e ->
     Alcotest.(check bool) "error names the version" true
       (contains ~affix:"version" e || contains ~affix:"protocol" e));
  match Proto.of_frame "" with
  | Ok _ -> Alcotest.fail "empty frame accepted"
  | Error _ -> ()

(* ---- the service queue discipline ---- *)

let test_queue_service_discipline () =
  let q = Shard_queue.create_empty ~shards:3 ~capacity:4 () in
  Alcotest.(check bool) "push a" true (Shard_queue.push q ~shard:0 "a");
  Alcotest.(check bool) "push b" true (Shard_queue.push q ~shard:0 "b");
  Alcotest.(check bool) "push c" true (Shard_queue.push q ~shard:1 "c");
  Alcotest.(check bool) "push d" true (Shard_queue.push q ~shard:2 "d");
  Alcotest.(check bool) "capacity refuses" false (Shard_queue.push q ~shard:1 "e");
  Alcotest.(check int) "depth of shard 0" 2 (Shard_queue.shard_depth q ~shard:0);
  (* round-robin: one item per non-empty shard per round, so the client
     with two queued items waits for everyone else's first *)
  let pops = List.init 4 (fun _ -> Shard_queue.pop_rr q) in
  Alcotest.(check (list (option string))) "rr order"
    [ Some "a"; Some "c"; Some "d"; Some "b" ] pops;
  Alcotest.(check (option string)) "empty" None (Shard_queue.pop_rr q);
  (* popping freed capacity *)
  Alcotest.(check bool) "push after pop" true (Shard_queue.push q ~shard:1 "f");
  Alcotest.(check bool) "push g" true (Shard_queue.push q ~shard:1 "g");
  Alcotest.(check (list string)) "clear_shard returns the backlog"
    [ "f"; "g" ] (Shard_queue.clear_shard q ~shard:1);
  Alcotest.(check int) "cleared" 0 (Shard_queue.shard_depth q ~shard:1)

(* ---- the facade ---- *)

let test_service_facade () =
  let sv = Analysis.service () in
  let task = List.hd (slice 16) in
  let r1, hit1 = Analysis.service_run sv task in
  let r2, hit2 = Analysis.service_run sv task in
  Alcotest.(check bool) "first run computes" false hit1;
  Alcotest.(check bool) "second run is warm" true hit2;
  Alcotest.(check string) "warm report identical"
    (Json.to_string (Verdict.report_to_json r1))
    (Json.to_string (Verdict.report_to_json r2));
  (* fault-marked requests must never be answered from (or poison) the
     warm layer: the marker asks for a live worker run *)
  let faulted = { task with Task.t_fault = Some (Task.Sleep 0.0) } in
  let _, fhit1 = Analysis.service_run sv faulted in
  let _, fhit2 = Analysis.service_run sv faulted in
  Alcotest.(check bool) "faulted never cache-served" false (fhit1 || fhit2)

let test_digest_distinguishes_entry_points () =
  (* the poly-* bundled apps share one dex and one native library and
     differ only in entry point — their cache keys must still differ *)
  let dig name =
    Analysis.digest
      { Task.t_id = 0; t_subject = Task.Bundled name; t_mode = Task.Static;
        t_fault = None }
  in
  Alcotest.(check bool) "poly-net vs poly-file" false
    (dig "poly-net" = dig "poly-file");
  Alcotest.(check bool) "poly-net vs poly-callback" false
    (dig "poly-net" = dig "poly-callback")

(* ---- the daemon ---- *)

let tmp_name prefix =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "%s-%d-%d" prefix (Unix.getpid ()) (Random.int 1_000_000))

let with_daemon ?(jobs = 1) ?depth ?max_clients ?deadline f =
  let socket = tmp_name "ndroid-test-sock" in
  match Unix.fork () with
  | 0 ->
    (try
       ignore
         (Server.serve (Server.config ~socket ~jobs ?depth ?max_clients
                          ?deadline ()))
     with _ -> ());
    Unix._exit 0
  | pid ->
    Fun.protect
      ~finally:(fun () ->
        (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
        ignore (Unix.waitpid [] pid);
        try Unix.unlink socket with Unix.Unix_error _ -> ())
      (fun () -> f socket)

let connect socket =
  match Proto.Client.connect ~retry_for:10.0 socket with
  | Error e -> Alcotest.failf "connect: %s" e
  | Ok c ->
    (* a wedged daemon must fail the test, not hang the suite *)
    Unix.setsockopt_float (Proto.Client.fd c) Unix.SO_RCVTIMEO 30.0;
    c

let submit c ?deadline ?(trace = false) (t : Task.t) =
  Proto.Client.send c
    (Proto.Submit
       { sb_req = t.Task.t_id; sb_subject = t.Task.t_subject;
         sb_mode = t.Task.t_mode; sb_deadline = deadline;
         sb_fault = t.Task.t_fault; sb_trace = trace })

(* next [n] terminal responses, in arrival order *)
let collect c n =
  let rec go acc k =
    if k = 0 then List.rev acc
    else
      match Proto.Client.recv c with
      | Error e -> Alcotest.failf "recv: %s" e
      | Ok (Proto.Verdict v) ->
        go ((v.vd_req, `Verdict (v.vd_report, v.vd_cached)) :: acc) (k - 1)
      | Ok (Proto.Shed s) -> go ((s.sh_req, `Shed s.sh_reason) :: acc) (k - 1)
      | Ok (Proto.Progress _) -> go acc k
      | Ok _ -> Alcotest.fail "unexpected message from the server"
  in
  go [] n

let reports_in_req_order terminals total =
  let arr = Array.make total None in
  List.iter
    (fun (req, t) ->
      match t with
      | `Verdict (r, cached) -> arr.(req) <- Some (r, cached)
      | `Shed reason -> Alcotest.failf "request %d shed: %s" req reason)
    terminals;
  Array.map
    (function
      | Some rc -> rc
      | None -> Alcotest.fail "request got no terminal response")
    arr

let test_daemon_parity_and_warm () =
  let tasks = slice 40 in
  let n = List.length tasks in
  let expected = json_of (Pool.run_inline tasks) in
  with_daemon ~jobs:2 (fun socket ->
      let c = connect socket in
      List.iter (submit c) tasks;
      let cold = reports_in_req_order (collect c n) n in
      Alcotest.(check string) "cold verdicts bit-identical to batch" expected
        (json_of (Array.map fst cold));
      Alcotest.(check bool) "cold run computed" true
        (Array.for_all (fun (_, cached) -> not cached) cold);
      List.iter (submit c) tasks;
      let warm = reports_in_req_order (collect c n) n in
      Alcotest.(check string) "warm verdicts bit-identical" expected
        (json_of (Array.map fst warm));
      Alcotest.(check bool) "warm run all served from cache" true
        (Array.for_all (fun (_, cached) -> cached) warm);
      Proto.Client.close c)

let test_daemon_two_clients () =
  (* two clients pipelining concurrently on one worker: each stream gets
     exactly its own verdicts, each request exactly one terminal *)
  let tasks = slice 12 in
  let n = List.length tasks in
  with_daemon ~jobs:1 (fun socket ->
      let a = connect socket in
      let b = connect socket in
      List.iter
        (fun t ->
          submit a t;
          submit b t)
        tasks;
      let check name terminals =
        let reqs =
          List.map fst terminals |> List.sort_uniq compare
        in
        Alcotest.(check (list int)) (name ^ ": every request answered once")
          (List.map (fun (t : Task.t) -> t.Task.t_id) tasks)
          reqs
      in
      check "client a" (collect a n);
      check "client b" (collect b n);
      Proto.Client.close a;
      Proto.Client.close b)

let test_daemon_fairness () =
  (* a saturating client cannot starve a neighbour: round-robin dispatch
     serves b's single request after at most one in-flight task, while
     a's backlog alone is ~1.5s of worker time *)
  let backlog = with_fault (Task.Sleep 0.05) (slice 30) in
  let quick = List.hd (slice 1) in
  with_daemon ~jobs:1 ~depth:64 (fun socket ->
      let a = connect socket in
      let b = connect socket in
      List.iter (submit a) backlog;
      Unix.sleepf 0.05 (* let a's backlog reach the queue first *);
      let t0 = Unix.gettimeofday () in
      submit b quick;
      (match collect b 1 with
       | [ (0, `Verdict _) ] -> ()
       | _ -> Alcotest.fail "b expected one verdict");
      let waited = Unix.gettimeofday () -. t0 in
      Alcotest.(check bool)
        (Printf.sprintf "b served promptly (%.3fs)" waited) true
        (waited < 0.75);
      Proto.Client.close b;
      ignore (collect a (List.length backlog));
      Proto.Client.close a)

let test_daemon_overload_sheds () =
  (* a bounded queue refuses loudly: every request gets its terminal
     response, none stall, the excess is shed *)
  let tasks = with_fault (Task.Sleep 0.01) (slice 30) in
  let n = List.length tasks in
  with_daemon ~jobs:1 ~depth:4 (fun socket ->
      let c = connect socket in
      List.iter (submit c) tasks;
      let terminals = collect c n in
      let sheds =
        List.length
          (List.filter (function _, `Shed _ -> true | _ -> false) terminals)
      in
      Alcotest.(check int) "every request answered" n (List.length terminals);
      Alcotest.(check bool)
        (Printf.sprintf "overload shed some load (%d)" sheds) true (sheds > 0);
      Proto.Client.close c)

let test_daemon_survives_worker_kill () =
  (* SIGKILL lands on the worker mid-request: that request gets a Crashed
     verdict, the daemon respawns and serves the next request normally *)
  let victim = { (List.hd (slice 1)) with Task.t_fault = Some Task.Kill } in
  let clean = List.hd (slice 1) in
  with_daemon ~jobs:1 (fun socket ->
      let c = connect socket in
      submit c victim;
      (match collect c 1 with
       | [ (0, `Verdict (r, _)) ] -> (
         match r.Verdict.r_verdict with
         | Verdict.Crashed why ->
           Alcotest.(check bool) "says how the worker died" true
             (contains ~affix:"SIGKILL" why)
         | _ -> Alcotest.fail "expected a Crashed verdict")
       | _ -> Alcotest.fail "expected one verdict");
      submit c clean;
      (match collect c 1 with
       | [ (0, `Verdict (r, _)) ] ->
         Alcotest.(check string) "respawned worker analyzes normally"
           "static" r.Verdict.r_analysis
       | _ -> Alcotest.fail "expected one verdict after the respawn");
      Proto.Client.close c)

let test_daemon_deadline () =
  let hung = { (List.hd (slice 1)) with Task.t_fault = Some Task.Hang } in
  let clean = List.hd (slice 1) in
  with_daemon ~jobs:1 (fun socket ->
      let c = connect socket in
      submit c ~deadline:0.2 hung;
      (match collect c 1 with
       | [ (0, `Verdict (r, _)) ] ->
         Alcotest.(check bool) "hung request times out" true
           (r.Verdict.r_verdict = Verdict.Timeout)
       | _ -> Alcotest.fail "expected one verdict");
      submit c clean;
      (match collect c 1 with
       | [ (0, `Verdict _) ] -> ()
       | _ -> Alcotest.fail "daemon must outlive the deadline kill");
      Proto.Client.close c)

(* ---- live streaming through the daemon ---- *)

let hybrid_task name =
  { Task.t_id = 0; t_subject = Task.Bundled name; t_mode = Task.Hybrid;
    t_fault = None }

(* A Submit with the trace flag streams its own events inline on the same
   connection: every Trace frame arrives before the verdict, carries the
   request id, and the stream crosses JNI in seq order. *)
let test_daemon_inline_trace_stream () =
  with_daemon ~jobs:1 (fun socket ->
      let c = connect socket in
      submit c ~trace:true (hybrid_task "case1");
      let rec go events =
        match Proto.Client.recv c with
        | Error e -> Alcotest.failf "recv: %s" e
        | Ok (Proto.Trace tc) ->
          Alcotest.(check int) "inline frames carry the request id" 0
            tc.Proto.tc_req;
          go (events @ tc.Proto.tc_events)
        | Ok (Proto.Verdict _) -> events
        | Ok (Proto.Progress _) -> go events
        | Ok _ -> Alcotest.fail "unexpected message"
      in
      let events = go [] in
      Alcotest.(check bool) "events arrived before the verdict" true
        (events <> []);
      Alcotest.(check bool) "the stream crosses JNI" true
        (List.exists
           (fun (ev : Stream.event) -> ev.Stream.ev_kind = Event.K_jni_begin)
           events);
      let seqs = List.map (fun (ev : Stream.event) -> ev.Stream.ev_seq) events in
      Alcotest.(check bool) "seq strictly ordered" true
        (List.sort_uniq compare seqs = seqs);
      Proto.Client.close c)

(* A Subscribe connection gets every analysis broadcast, filtered to its
   categories and app regexp, with req = -1; verdicts never land there. *)
let test_daemon_broadcast_subscriber () =
  with_daemon ~jobs:1 (fun socket ->
      let sub = connect socket in
      Proto.Client.send sub
        (Proto.Subscribe
           { su_cats = [ "jni" ]; su_app = Some "case.*"; su_window = 0 });
      let c = connect socket in
      submit c (hybrid_task "case1");
      (match collect c 1 with
       | [ (0, `Verdict _) ] -> ()
       | _ -> Alcotest.fail "submitter expected one verdict");
      (match Proto.Client.recv sub with
       | Error e -> Alcotest.failf "subscriber recv: %s" e
       | Ok (Proto.Trace tc) ->
         Alcotest.(check int) "broadcast frames are request-less" (-1)
           tc.Proto.tc_req;
         Alcotest.(check string) "frames name the app" "case1"
           tc.Proto.tc_app;
         Alcotest.(check bool) "frame is non-empty" true
           (tc.Proto.tc_events <> []);
         List.iter
           (fun (ev : Stream.event) ->
             Alcotest.(check string) "category filter respected" "jni"
               (Event.category ev.Stream.ev_kind))
           tc.Proto.tc_events;
         Alcotest.(check bool) "the jni lane has its begin" true
           (List.exists
              (fun (ev : Stream.event) ->
                ev.Stream.ev_kind = Event.K_jni_begin)
              tc.Proto.tc_events)
       | Ok _ -> Alcotest.fail "subscriber expected a Trace frame");
      Proto.Client.close sub;
      Proto.Client.close c)

(* The app regexp is a real gate: a subscriber watching a different app
   sees no frames for this analysis, only the submitter's inline stream
   exists.  (Asserting a negative over a live socket: the submitter's
   verdict is the happens-after barrier — by then fan-out for the task is
   done, and the subscriber's connection must hold nothing.) *)
let test_daemon_subscriber_app_filter () =
  with_daemon ~jobs:1 (fun socket ->
      let sub = connect socket in
      Proto.Client.send sub
        (Proto.Subscribe
           { su_cats = []; su_app = Some "no-such-app.*"; su_window = 0 });
      let c = connect socket in
      submit c (hybrid_task "case1");
      (match collect c 1 with
       | [ (0, `Verdict _) ] -> ()
       | _ -> Alcotest.fail "submitter expected one verdict");
      Unix.setsockopt_float (Proto.Client.fd sub) Unix.SO_RCVTIMEO 0.3;
      (match Proto.Client.recv sub with
       | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
         ()  (* receive timeout: nothing was sent, as required *)
       | Error _ -> ()
       | Ok (Proto.Trace tc) ->
         Alcotest.failf "filtered subscriber got %d events for %s"
           (List.length tc.Proto.tc_events) tc.Proto.tc_app
       | Ok _ -> Alcotest.fail "unexpected message");
      Proto.Client.close sub;
      Proto.Client.close c)

(* ---- batch-side satellites ---- *)

let test_inline_progress_uniform () =
  (* progress must fire once per task whether the answer was computed or
     served warm — a progress bar that skips cache hits reads as a hang *)
  let tasks = slice 20 in
  let n = List.length tasks in
  let count = ref 0 in
  let last = ref 0 in
  let progress ~done_ ~total =
    incr count;
    Alcotest.(check int) "monotone" (!last + 1) done_;
    last := done_;
    Alcotest.(check int) "total constant" n total
  in
  ignore (Pool.run_inline ~progress tasks);
  Alcotest.(check int) "cold: one tick per task" n !count;
  count := 0;
  last := 0;
  ignore (Pool.run_inline ~progress tasks);
  Alcotest.(check int) "warm path ticks the same" n !count

let test_pool_stats_shed_zero () =
  let _, stats = Pool.run (Pool.config ~jobs:2 ()) (slice 24) in
  Alcotest.(check int) "batch sweeps never shed" 0 stats.Pool.s_shed

let suite =
  [ Alcotest.test_case "proto: messages roundtrip the wire" `Quick
      test_proto_roundtrip;
    Alcotest.test_case "proto: version mismatch is decisive" `Quick
      test_proto_version_mismatch;
    Alcotest.test_case "queue: service discipline (rr, bound, clear)" `Quick
      test_queue_service_discipline;
    Alcotest.test_case "service: facade memoizes, faults bypass" `Quick
      test_service_facade;
    Alcotest.test_case "service: digest keys on entry point" `Quick
      test_digest_distinguishes_entry_points;
    Alcotest.test_case "daemon: verdicts bit-identical to batch, warm hits"
      `Quick test_daemon_parity_and_warm;
    Alcotest.test_case "daemon: two clients, interleaved streams" `Quick
      test_daemon_two_clients;
    Alcotest.test_case "daemon: saturating client cannot starve another"
      `Quick test_daemon_fairness;
    Alcotest.test_case "daemon: overload sheds, nothing stalls" `Quick
      test_daemon_overload_sheds;
    Alcotest.test_case "daemon: survives worker SIGKILL mid-request" `Quick
      test_daemon_survives_worker_kill;
    Alcotest.test_case "daemon: per-request deadline kills and recovers"
      `Quick test_daemon_deadline;
    Alcotest.test_case "daemon: submit --trace streams before the verdict"
      `Quick test_daemon_inline_trace_stream;
    Alcotest.test_case "daemon: subscriber gets filtered broadcast frames"
      `Quick test_daemon_broadcast_subscriber;
    Alcotest.test_case "daemon: app regexp gates the broadcast" `Quick
      test_daemon_subscriber_app_filter;
    Alcotest.test_case "pool: progress uniform across cache hits" `Quick
      test_inline_progress_uniform;
    Alcotest.test_case "pool: batch stats report zero shed" `Quick
      test_pool_stats_shed_zero ]
