(* Static analysis: CFG recovery, stream disassembly roundtrips, and the
   static-vs-dynamic agreement property over the scenario apps. *)

module T = Ndroid_taint.Taint
module Insn = Ndroid_arm.Insn
module Asm = Ndroid_arm.Asm
module Disasm = Ndroid_arm.Disasm
module Cpu = Ndroid_arm.Cpu
module B = Ndroid_dalvik.Bytecode
module Dvalue = Ndroid_dalvik.Dvalue
module H = Ndroid_apps.Harness
module Market = Ndroid_corpus.Market
module Apk = Ndroid_corpus.Apk
module Classifier = Ndroid_corpus.Classifier
module St = Ndroid_static
module P_task = Ndroid_pipeline.Task
module Analysis = Ndroid_pipeline.Analysis
module Market_exec = Ndroid_pipeline.Market_exec
module Verdict = Ndroid_report.Verdict
module Flow = Ndroid_report.Flow
module Focus = Ndroid_report.Focus

(* ---- Dalvik CFG recovery ---- *)

(*  0: const v0
    1: ifz-eq v0 -> 4
    2: const v1
    3: goto 5
    4: const-string v1
    5: return v1 *)
let diamond =
  [| B.Const (0, Dvalue.zero);
     B.Ifz (B.Eq, 0, 4);
     B.Const (1, Dvalue.zero);
     B.Goto 5;
     B.Const_string (1, "x");
     B.Return 1 |]

let test_dex_cfg_blocks () =
  let cfg = St.Dex_cfg.of_code diamond in
  let blocks = St.Dex_cfg.blocks cfg in
  Alcotest.(check (list (pair int int)))
    "diamond blocks"
    [ (0, 2); (2, 4); (4, 5); (5, 6) ]
    blocks;
  Alcotest.(check (list int)) "if successors" [ 2; 4 ] (List.sort compare (St.Dex_cfg.succs cfg 1));
  Alcotest.(check (list int)) "goto successor" [ 5 ] (St.Dex_cfg.succs cfg 3);
  Alcotest.(check (list int)) "return has no successors" [] (St.Dex_cfg.succs cfg 5)

let test_dex_cfg_reaching_defs () =
  let cfg = St.Dex_cfg.of_code diamond in
  Alcotest.(check (list int))
    "both arms reach the return"
    [ 2; 4 ]
    (List.sort compare (St.Dex_cfg.reaching_defs cfg 5 1));
  Alcotest.(check (list int))
    "v0's only def"
    [ 0 ]
    (St.Dex_cfg.reaching_defs cfg 1 0)

(* ---- native CFG recovery ---- *)

let small_lib () =
  let open Asm in
  assemble ~base:0x4a000000
    [ Label "f";
      I (Insn.cmp 0 (Insn.Imm 0));
      Br (Insn.NE, "skip");
      I (Insn.mov 0 (Insn.Imm 1));
      Label "skip";
      I Insn.bx_lr;
      Label "msg";
      Asciz "hello" ]

let test_native_cfg_blocks () =
  let cfg = St.Native_cfg.of_program ~name:"small" (small_lib ()) in
  let f = Option.get (St.Native_cfg.symbol_addr cfg "f") in
  let skip = Option.get (St.Native_cfg.symbol_addr cfg "skip") in
  let blocks = St.Native_cfg.basic_blocks cfg in
  let starts = List.map (fun (s, _, _) -> s) blocks in
  Alcotest.(check bool) "f is a leader" true (List.mem f starts);
  Alcotest.(check bool) "branch target is a leader" true (List.mem skip starts);
  let _, _, succs =
    List.find (fun (s, _, _) -> s = f) blocks
  in
  Alcotest.(check bool) "conditional branch reaches skip" true
    (List.mem skip succs)

let test_native_cfg_cstring () =
  let cfg = St.Native_cfg.of_program ~name:"small" (small_lib ()) in
  let msg = Option.get (St.Native_cfg.symbol_addr cfg "msg") in
  Alcotest.(check (option string)) "string at msg" (Some "hello")
    (St.Native_cfg.cstring_at cfg msg);
  (* data bytes live at odd addresses too: no thumb-bit clearing on reads *)
  Alcotest.(check (option string)) "string at msg+1" (Some "ello")
    (St.Native_cfg.cstring_at cfg (msg + 1));
  Alcotest.(check (option string)) "out of image" None
    (St.Native_cfg.cstring_at cfg 0x100)

(* ---- random stream disassembly roundtrips ---- *)

let arm_insn_gen =
  let open QCheck.Gen in
  let reg = int_bound 14 in
  let op2 =
    oneof
      [ map (fun r -> Insn.Reg r) reg;
        map (fun b -> Insn.Imm (b land 0xFF)) (int_bound 255);
        map3
          (fun r k n -> Insn.Reg_shift_imm (r, k, n))
          reg
          (oneofl [ Insn.LSL; Insn.LSR; Insn.ASR; Insn.ROR ])
          (int_range 1 31) ]
  in
  let dp =
    let op =
      oneofl
        [ Insn.AND; Insn.EOR; Insn.SUB; Insn.ADD; Insn.ORR; Insn.BIC;
          Insn.MOV; Insn.MVN ]
    in
    map3
      (fun op (rd, rn) (op2, s) ->
        Insn.Dp
          { cond = Insn.AL; op; s; rd;
            rn = (if Insn.is_move_op op then 0 else rn); op2 })
      op (pair reg reg) (pair op2 bool)
  in
  let mem =
    map3
      (fun (rd, rn) off load ->
        Insn.Mem
          { cond = Insn.AL; load; width = Insn.Word; rd; rn;
            offset = Insn.Off_imm off; pre = true; writeback = false })
      (pair reg reg)
      (int_range (-255) 255)
      bool
  in
  let branch =
    map2
      (fun offset link -> Insn.B { cond = Insn.AL; link; offset })
      (int_range (-500) 500)
      bool
  in
  oneof [ dp; dp; mem; branch ]

let thumb_insn_gen =
  let open QCheck.Gen in
  let reg = int_bound 7 in
  let imm8 = int_bound 255 in
  oneof
    [ map2 (fun rd k -> Insn.movs rd (Insn.Imm k)) reg imm8;
      map2 (fun rd k -> Insn.adds rd rd (Insn.Imm k)) reg imm8;
      map2 (fun rd k -> Insn.subs rd rd (Insn.Imm k)) reg imm8;
      map2 (fun rd k -> Insn.cmp rd (Insn.Imm k)) reg imm8;
      map2
        (fun rd n ->
          Insn.Dp
            { cond = Insn.AL; op = Insn.MOV; s = true; rd; rn = 0;
              op2 = Insn.Reg_shift_imm (rd, Insn.LSL, n) })
        reg (int_range 1 31);
      (* 32-bit Thumb BL *)
      map
        (fun offset -> Insn.B { cond = Insn.AL; link = true; offset })
        (int_range (-1000) 1000) ]

let stream_roundtrip mode insns =
  let prog =
    Asm.assemble ~mode ~base:0x4a000000 (List.map (fun i -> Asm.I i) insns)
  in
  let lines = Disasm.program prog in
  List.length lines = List.length insns
  && List.for_all2
       (fun (l : Disasm.line) i -> l.Disasm.l_insn = Some i)
       lines insns

let prop_arm_stream_roundtrip =
  QCheck.Test.make ~name:"ARM stream: assemble -> disassemble" ~count:200
    (QCheck.make
       QCheck.Gen.(list_size (int_range 1 20) arm_insn_gen)
       ~print:(fun l -> String.concat "; " (List.map Insn.to_string l)))
    (fun insns -> stream_roundtrip Cpu.Arm insns)

let prop_thumb_stream_roundtrip =
  QCheck.Test.make ~name:"Thumb stream: assemble -> disassemble (incl. BL)"
    ~count:200
    (QCheck.make
       QCheck.Gen.(list_size (int_range 1 20) thumb_insn_gen)
       ~print:(fun l -> String.concat "; " (List.map Insn.to_string l)))
    (fun insns -> stream_roundtrip Cpu.Thumb insns)

(* ---- static vs. dynamic agreement over the scenario apps ---- *)

let e3_apps () =
  Ndroid_apps.Cases.all @ Ndroid_apps.Case_studies.all
  @ Ndroid_apps.Polymorphic.variants

let static_flagged (app : H.app) =
  let v = St.Drive.verdict_of_app app in
  if app.H.expected_sink = "" then St.Analyzer.flagged v
  else St.Analyzer.flagged_at v app.H.expected_sink

let test_agreement () =
  List.iter
    (fun (app : H.app) ->
      let dynamic = (H.run H.Ndroid_full app).H.detected in
      if dynamic then
        Alcotest.(check bool)
          (Printf.sprintf "%s: dynamically detected => statically flagged"
             app.H.app_name)
          true (static_flagged app))
    (e3_apps ())

let test_evasion_statically_flagged () =
  let app = Ndroid_apps.Evasion.app in
  Alcotest.(check bool) "dynamic NDroid misses the evasion app (by design)"
    false
    (H.run H.Ndroid_full app).H.detected;
  Alcotest.(check bool) "static control-flow taint flags it" true
    (St.Analyzer.flagged (St.Drive.verdict_of_app app))

let test_flow_contexts () =
  (* case4 leaks from native code (sendto); case3 hands the data back to
     Java which sends it — the verdicts must keep the contexts apart *)
  let case4 = List.find (fun a -> a.H.app_name = "case4") Ndroid_apps.Cases.all in
  let v4 = St.Drive.verdict_of_app case4 in
  Alcotest.(check bool) "case4 flags a native sendto flow" true
    (List.exists
       (fun (f : St.Flow.t) ->
         f.St.Flow.f_sink = "sendto" && f.St.Flow.f_context = St.Flow.Native_ctx)
       (St.Analyzer.flows v4));
  let case3 = List.find (fun a -> a.H.app_name = "case3") Ndroid_apps.Cases.all in
  let v3 = St.Drive.verdict_of_app case3 in
  Alcotest.(check bool) "case3 flags a Java-context Socket.send flow" true
    (List.exists
       (fun (f : St.Flow.t) ->
         f.St.Flow.f_sink = "Socket.send"
         && f.St.Flow.f_context = St.Flow.Java_ctx)
       (St.Analyzer.flows v3))

let test_clean_apps_stay_clean () =
  (* the Sec. VI batch mixes one real leaker (ePhone) with benign apps;
     the benign ones — dynamically clean — must not be flagged statically *)
  List.iter
    (fun (app : H.app) ->
      if not (H.run H.Ndroid_full app).H.detected then
        Alcotest.(check bool)
          (Printf.sprintf "%s stays clean" app.H.app_name)
          false
          (St.Analyzer.flagged (St.Drive.verdict_of_app app)))
    Ndroid_apps.Sec6_batch.apps

(* ---- market slice: APK-level soundness and classifier agreement ---- *)

let test_market_soundness () =
  let params = Market.scaled 300 in
  let leaky = ref 0 and missed = ref 0 in
  Seq.iter
    (fun model ->
      if Market.app_is_leaky model then begin
        incr leaky;
        let v = St.Analyzer.analyze_apk (Apk.of_app_model model) in
        if not (St.Analyzer.flagged v) then incr missed
      end)
    (Market.generate params);
  Alcotest.(check bool) "slice contains leaky apps" true (!leaky > 0);
  Alcotest.(check int) "no leaky market app statically missed" 0 !missed

let test_classifier_agreement () =
  let params = Market.scaled 150 in
  Seq.iter
    (fun model ->
      let symbolic = Classifier.classify model in
      let binary = Apk.classify (Apk.of_app_model model) in
      Alcotest.(check string) "symbolic and artifact-level verdicts agree"
        (Classifier.classification_name symbolic)
        (Classifier.classification_name binary))
    (Market.generate params)

(* ---- hybrid: slice soundness and verdict agreement ---- *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  nn > 0 && nn <= nh
  &&
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* a provenance hop that names a java->native crossing must name one the
   static slice put in the focus set — otherwise the focused dynamic pass
   could have slept through the very crossing that leaked.  Upcall
   (native->java) hops are exempt: tracking is already active by the time
   a focused native calls back into Java, so they never gate anything. *)
let hop_in_focus (focus : Focus.t) (h : Flow.hop) =
  h.Flow.h_kind <> "jni"
  || not (contains h.Flow.h_site "(java->native)")
  || List.exists (contains h.Flow.h_site)
       (focus.Focus.natives @ focus.Focus.methods @ focus.Focus.crossings)

let flow_keys r =
  List.sort_uniq compare
    (List.map Flow.key (Verdict.flows r.Verdict.r_verdict))

(* Slice soundness, generatively: for a random market app (random slice
   seed, random id), the dynamic pass gated on the static focus set must
   observe exactly the flows the ungated pass observes, and any
   dynamically observed flow implies a static flag with a usable focus
   set.  Each draw also exercises the nearest leaky app so the property
   is never vacuously checked on clean apps only. *)
let slice_sound params id =
  let model = Market.app params id in
  let v = St.Analyzer.analyze_apk (Apk.of_app_model model) in
  let full = Market_exec.run model in
  let focused = Market_exec.run ~focus:v.St.Analyzer.v_focus model in
  flow_keys focused = flow_keys full
  && (flow_keys full = []
     || (St.Analyzer.flagged v && not (Focus.is_empty v.St.Analyzer.v_focus)))
  && List.for_all
       (fun (f : Flow.t) ->
         List.for_all (hop_in_focus v.St.Analyzer.v_focus) f.Flow.f_hops)
       (Verdict.flows focused.Verdict.r_verdict)

let prop_slice_soundness =
  QCheck.Test.make
    ~name:"slice soundness: focused dynamic observes every flow" ~count:25
    (QCheck.make
       ~print:(fun (id, seed) -> Printf.sprintf "id=%d seed=%d" id seed)
       QCheck.Gen.(pair (int_range 0 599) (int_range 0 9999)))
    (fun (id, seed) ->
      let params = { Market.total = 600; seed; type1_permille = None } in
      let rec leaky_id i tries =
        if tries = 0 then None
        else if Market.app_is_leaky (Market.app params i) then Some i
        else leaky_id ((i + 1) mod 600) (tries - 1)
      in
      slice_sound params id
      && (match leaky_id id 600 with
         | Some i -> slice_sound params i
         | None -> true))

(* hybrid must agree with --both verdict-for-verdict: same flags, same
   flows, over the bundled registry and a market slice *)
let test_hybrid_agreement () =
  let check_task name task_of_mode =
    let both = Analysis.run (task_of_mode P_task.Both) in
    let hybrid = Analysis.run (task_of_mode P_task.Hybrid) in
    Alcotest.(check bool)
      (Printf.sprintf "%s: hybrid and both agree on flagged" name)
      (Verdict.flagged both.Verdict.r_verdict)
      (Verdict.flagged hybrid.Verdict.r_verdict);
    Alcotest.(check bool)
      (Printf.sprintf "%s: hybrid and both agree on flows" name)
      true
      (Verdict.equal both.Verdict.r_verdict hybrid.Verdict.r_verdict)
  in
  List.iter
    (fun (app : H.app) ->
      check_task app.H.app_name (fun mode ->
          { P_task.t_id = 0; t_subject = P_task.Bundled app.H.app_name;
            t_mode = mode; t_fault = None }))
    Ndroid_apps.Registry.all;
  let params = Market.scaled 300 in
  List.iter
    (fun id ->
      check_task
        (Printf.sprintf "market[%d]" id)
        (fun mode -> List.nth (P_task.of_market_slice ~mode params) id))
    (List.init 300 Fun.id)

(* every bundled dynamic detection's provenance stays inside the focus
   set the static slice computed for that app *)
let test_bundled_hops_in_focus () =
  List.iter
    (fun (app : H.app) ->
      let dyn =
        Analysis.run
          { P_task.t_id = 0; t_subject = P_task.Bundled app.H.app_name;
            t_mode = P_task.Dynamic; t_fault = None }
      in
      match dyn.Verdict.r_verdict with
      | Verdict.Flagged flows ->
        let v = St.Drive.verdict_of_app app in
        let focus = v.St.Analyzer.v_focus in
        Alcotest.(check bool)
          (Printf.sprintf "%s: flagged app has a non-empty focus set"
             app.H.app_name)
          false (Focus.is_empty focus);
        List.iter
          (fun (f : Flow.t) ->
            List.iter
              (fun (h : Flow.hop) ->
                Alcotest.(check bool)
                  (Printf.sprintf "%s: jni hop %S within focus set"
                     app.H.app_name h.Flow.h_site)
                  true (hop_in_focus focus h))
              f.Flow.f_hops)
          flows
      | _ -> ())
    Ndroid_apps.Registry.all

let suite =
  [ Alcotest.test_case "dex cfg: diamond blocks" `Quick test_dex_cfg_blocks;
    Alcotest.test_case "dex cfg: reaching defs" `Quick test_dex_cfg_reaching_defs;
    Alcotest.test_case "native cfg: block recovery" `Quick test_native_cfg_blocks;
    Alcotest.test_case "native cfg: cstring reads" `Quick test_native_cfg_cstring;
    Alcotest.test_case "static/dynamic agreement (E3 apps)" `Quick test_agreement;
    Alcotest.test_case "evasion app flagged statically" `Quick
      test_evasion_statically_flagged;
    Alcotest.test_case "flow contexts" `Quick test_flow_contexts;
    Alcotest.test_case "benign batch stays clean" `Quick
      test_clean_apps_stay_clean;
    Alcotest.test_case "market slice soundness" `Quick test_market_soundness;
    Alcotest.test_case "classifier agreement" `Quick test_classifier_agreement;
    Alcotest.test_case "hybrid agrees with both" `Quick test_hybrid_agreement;
    Alcotest.test_case "bundled provenance within focus" `Quick
      test_bundled_hops_in_focus;
    QCheck_alcotest.to_alcotest prop_arm_stream_roundtrip;
    QCheck_alcotest.to_alcotest prop_thumb_stream_roundtrip;
    QCheck_alcotest.to_alcotest prop_slice_soundness ]
