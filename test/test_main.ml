let () =
  Alcotest.run "ndroid"
    [ ("taint", Test_taint.suite);
      ("arm", Test_arm.suite);
      ("asm", Test_asm.suite);
      ("dalvik", Test_dalvik.suite);
      ("dalvik-diff", Test_dalvik_diff.suite);
      ("native-diff", Test_native_diff.suite);
      ("jni", Test_jni.suite);
      ("android", Test_android.suite);
      ("emulator", Test_emulator.suite);
      ("runtime", Test_runtime.suite);
      ("ndroid", Test_ndroid.suite);
      ("corpus", Test_corpus.suite);
      ("apps", Test_apps.suite);
      ("extensions", Test_extensions.suite);
      ("soundness", Test_soundness.suite);
      ("integration", Test_integration.suite);
      ("summaries", Test_summaries.suite);
      ("tools", Test_tools.suite);
      ("enforcement", Test_enforcement.suite);
      ("artifacts", Test_artifacts.suite);
      ("jni-surface", Test_jni_surface.suite);
      ("dynload", Test_dynload.suite);
      ("file-taint", Test_file_taint.suite);
      ("stress", Test_stress.suite);
      ("consistency", Test_consistency.suite);
      ("misc", Test_misc.suite);
      ("static", Test_static.suite);
      ("pipeline", Test_pipeline.suite);
      ("service", Test_service.suite);
      ("obs", Test_obs.suite);
      (* last: this suite spawns domains, and Unix.fork is illegal in
         OCaml 5 once any domain has ever existed in the process — every
         forking suite above must run first *)
      ("domains", Test_domains.suite) ]
