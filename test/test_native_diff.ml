(* Differential tests for the three native taint paths: random
   straight-line native bodies run through (1) the per-instruction
   trace loop, (2) superblock execution with fused taint transfers, and
   (3) — when the body is summary-exact — the digest-cached native taint
   summary.  Registers, memory, and the full taint state must agree
   across all paths (oracle pattern of test_dalvik_diff.ml).

   Plus deterministic regressions for self-modifying code: a runtime
   write into a translated code page must invalidate the superblock and
   reject the library's summaries, falling back to emulation. *)

module Taint = Ndroid_taint.Taint
module Insn = Ndroid_arm.Insn
module Cpu = Ndroid_arm.Cpu
module Asm = Ndroid_arm.Asm
module Memory = Ndroid_arm.Memory
module Layout = Ndroid_emulator.Layout
module Machine = Ndroid_emulator.Machine
module Tracer = Ndroid_emulator.Tracer
module Superblock = Ndroid_emulator.Superblock
module Taint_engine = Ndroid_emulator.Taint_engine
module Insn_taint = Ndroid_emulator.Insn_taint
module Summary = Ndroid_summary.Summary
module Device = Ndroid_runtime.Device
module Ndroid = Ndroid_core.Ndroid
module Vm = Ndroid_dalvik.Vm
module Dvalue = Ndroid_dalvik.Dvalue
module J = Ndroid_dalvik.Jbuilder
module B = Ndroid_dalvik.Bytecode
module H = Ndroid_apps.Harness
module A = Ndroid_android

(* ---------------- random native bodies ---------------- *)

(* Straight-line bodies over r0-r9 (r10 is reserved as the data-buffer
   base in memory-touching bodies; r12-r15 never appear, so register-only
   bodies are summary-exact candidates). *)

type case = {
  with_mem : bool;  (** include loads/stores against an in-image buffer *)
  insns : Insn.t list;
  args : int list;  (** r0-r3 at entry *)
}

let reg_gen = QCheck.Gen.int_range 0 9

let op2_gen =
  let open QCheck.Gen in
  oneof
    [ map (fun r -> Insn.Reg r) reg_gen;
      map (fun i -> Insn.Imm i) (int_range 0 255) ]

let dp_gen : Insn.t QCheck.Gen.t =
  let open QCheck.Gen in
  frequency
    [ (3, map2 Insn.mov reg_gen op2_gen);
      (1, map2 Insn.mvn reg_gen op2_gen);
      (4, map3 Insn.add reg_gen reg_gen op2_gen);
      (3, map3 Insn.sub reg_gen reg_gen op2_gen);
      (2, map3 Insn.adds reg_gen reg_gen op2_gen);
      (2, map3 Insn.subs reg_gen reg_gen op2_gen);
      (* carry consumers: the summary replay must seed entry flags *)
      (2, map3 Insn.adc reg_gen reg_gen op2_gen);
      (2, map3 Insn.eor reg_gen reg_gen op2_gen);
      (2, map3 Insn.orr reg_gen reg_gen op2_gen);
      (2, map3 Insn.and_ reg_gen reg_gen op2_gen);
      (1, map3 Insn.bic reg_gen reg_gen op2_gen);
      (1, map2 Insn.cmp reg_gen op2_gen);
      (1, map2 Insn.tst reg_gen op2_gen);
      (2, map3 Insn.mul reg_gen reg_gen reg_gen);
      (1, map3 (fun d m s -> Insn.mla d m s d) reg_gen reg_gen reg_gen);
      (1,
       map3
         (fun d m s -> Insn.umull d ((d + 1) mod 10) m s)
         (int_range 0 9) reg_gen reg_gen);
      (1, map2 Insn.clz reg_gen reg_gen) ]

let mem_gen : Insn.t QCheck.Gen.t =
  let open QCheck.Gen in
  let off = map (fun i -> 4 * i) (int_range 0 15) in
  oneof
    [ map2 (fun r o -> Insn.ldr r 10 o) reg_gen off;
      map2 (fun r o -> Insn.str r 10 o) reg_gen off ]

let case_gen =
  let open QCheck.Gen in
  bool >>= fun with_mem ->
  let insn = if with_mem then frequency [ (3, dp_gen); (2, mem_gen) ] else dp_gen in
  map2
    (fun insns args -> { with_mem; insns; args })
    (list_size (int_range 1 24) insn)
    (list_repeat 4 (int_range (-100) 1000))

let print_case c =
  Printf.sprintf "mem=%b args=[%s]\n  %s" c.with_mem
    (String.concat ";" (List.map string_of_int c.args))
    (String.concat "\n  " (List.map Insn.to_string c.insns))

(* ---------------- the three paths ---------------- *)

let program c =
  let body = List.map (fun i -> Asm.I i) c.insns in
  let pre = if c.with_mem then [ Asm.La (10, "buf") ] else [] in
  Asm.assemble ~base:Layout.app_lib_base
    ([ Asm.Label "f" ] @ pre @ body
    @ [ Asm.I Insn.bx_lr; Asm.Align4; Asm.Label "buf" ]
    @ List.init 16 (fun i -> Asm.Word (0x01010101 * (i + 1))))

(* identical entry taint for every path: r1 carries IMEI, r3 carries SMS,
   and the buffer's second and third words carry IMEI *)
let seed_taints engine prog =
  Taint_engine.set_reg engine 1 Taint.imei;
  Taint_engine.set_reg engine 3 Taint.sms;
  Taint_engine.set_mem engine (Asm.symbol prog "buf" + 4) 8 Taint.imei

let taint_str t = Format.asprintf "%a" Taint.pp t

let taint_dump engine prog =
  let buf = Asm.symbol prog "buf" in
  Printf.sprintf "regs=[%s] mem=[%s]"
    (String.concat ";"
       (List.init 13 (fun i -> taint_str (Taint_engine.reg engine i))))
    (String.concat ";"
       (List.init 16 (fun i ->
            taint_str (Taint_engine.mem engine (buf + (4 * i)) 4))))

let machine_dump m prog (r0, r1) =
  let cpu = Machine.cpu m in
  let buf = Asm.symbol prog "buf" in
  Printf.sprintf "ret=%d,%d regs=[%s] buf=[%s]" r0 r1
    (String.concat ";" (List.init 13 (fun i -> string_of_int (Cpu.reg cpu i))))
    (String.concat ";"
       (List.init 16 (fun i ->
            string_of_int (Memory.read_u32 (Machine.mem m) (buf + (4 * i))))))

let run_path ~superblocks prog c =
  let m = Machine.create () in
  Machine.load_program m prog;
  let engine = Taint_engine.create () in
  let cpu = Machine.cpu m in
  let _tracer =
    Tracer.attach
      ~handler:(fun ~addr ~insn -> Insn_taint.step engine cpu ~addr insn)
      m
  in
  if superblocks then ignore (Machine.enable_superblocks ~engine m : Superblock.t);
  seed_taints engine prog;
  let r0, r1 = Machine.call_native m ~addr:(Asm.fn_addr prog "f") ~args:c.args () in
  ((r0, r1), m, engine)

let run_summary prog c =
  let m = Machine.create () in
  Machine.load_program m prog;
  let lib = Summary.derive (Machine.mem m) prog in
  match Summary.find lib (Asm.fn_addr prog "f") with
  | Some fn when fn.Summary.f_verdict = Summary.Exact ->
    let engine = Taint_engine.create () in
    seed_taints engine prog;
    let slots = Array.of_list (List.map (fun v -> (v, Taint.clear)) c.args) in
    let r0, r1 =
      Summary.eval fn ~cpu:(Machine.cpu m) ~mem:(Machine.mem m) ~slots
    in
    Summary.apply_masks engine fn.Summary.f_masks;
    Some ((r0, r1), engine)
  | _ -> None

let differential c =
  let prog = program c in
  let ret_i, m_i, e_i = run_path ~superblocks:false prog c in
  let ret_s, m_s, e_s = run_path ~superblocks:true prog c in
  let check what a b =
    if a <> b then
      QCheck.Test.fail_reportf "%s differs\nper-insn:   %s\nother path: %s" what
        a b
  in
  check "machine state (superblock)"
    (machine_dump m_i prog ret_i)
    (machine_dump m_s prog ret_s);
  check "taint state (superblock)" (taint_dump e_i prog) (taint_dump e_s prog);
  (match run_summary prog c with
   | Some (ret_m, e_m) ->
     check "return value (summary)"
       (Printf.sprintf "%d,%d" (fst ret_i) (snd ret_i))
       (Printf.sprintf "%d,%d" (fst ret_m) (snd ret_m));
     check "taint state (summary)" (taint_dump e_i prog) (taint_dump e_m prog)
   | None ->
     (* register-only bodies must be summary-exact; only memory-touching
        ones may fall back *)
     if not c.with_mem then
       QCheck.Test.fail_reportf "register-only body not summarized as Exact");
  true

let prop_three_paths =
  QCheck.Test.make ~name:"per-insn == superblock == summary" ~count:400
    (QCheck.make ~print:print_case case_gen)
    differential

(* ---------------- self-modifying code ---------------- *)

(* two one-instruction functions; patching f's body with g's first word
   must invalidate f's superblock and change the observed return value *)
let selfmod_prog () =
  Asm.assemble ~base:Layout.app_lib_base
    [ Asm.Label "n"; Asm.I (Insn.mov 0 (Insn.Imm 1)); Asm.I Insn.bx_lr;
      Asm.Label "g"; Asm.I (Insn.mov 0 (Insn.Imm 2)); Asm.I Insn.bx_lr ]

let test_superblock_invalidation () =
  let prog = selfmod_prog () in
  let m = Machine.create () in
  Machine.load_program m prog;
  let sb = Machine.enable_superblocks m in
  let f = Asm.fn_addr prog "n" and g = Asm.fn_addr prog "g" in
  let call () = fst (Machine.call_native m ~addr:f ~args:[] ()) in
  Alcotest.(check int) "before patch" 1 (call ());
  Alcotest.(check int) "warm cache" 1 (call ());
  let hits_before = Superblock.hits sb in
  Alcotest.(check bool) "block was cached" true (hits_before > 0);
  (* runtime write into the translated code page *)
  Memory.write_u32 (Machine.mem m) f (Memory.read_u32 (Machine.mem m) g);
  Alcotest.(check int) "after patch" 2 (call ());
  Alcotest.(check bool) "stale block retranslated" true
    (Superblock.invalidations sb > 0)

(* device level: a runtime write into a summarized library must mark its
   summaries dirty, so the JNI bridge rejects them and re-emulates *)
let selfmod_cls = "LSelfMod;"

let selfmod_device () =
  let device = Device.create () in
  Device.install_classes device
    [ J.class_ ~name:selfmod_cls
        [ J.native_method ~cls:selfmod_cls ~name:"n" ~shorty:"I" "n";
          J.method_ ~cls:selfmod_cls ~name:"call" ~shorty:"I" ~registers:2
            [ J.I
                (B.Invoke
                   (B.Static, { B.m_class = selfmod_cls; m_name = "n" }, []));
              J.I (B.Move_result 0);
              J.I (B.Return 0) ] ] ];
  Device.provide_library device "selfmod" (selfmod_prog ());
  Device.load_library device "selfmod";
  device

let test_summary_staleness () =
  let device = selfmod_device () in
  Device.set_use_summaries device true;
  let run () =
    match Device.run device selfmod_cls "call" [||] with
    | Dvalue.Int v, _ -> Int32.to_int v
    | v, _ -> Alcotest.failf "unexpected result %s" (Dvalue.to_string v)
  in
  Alcotest.(check int) "summary path answers" 1 (run ());
  Alcotest.(check int) "summary applied" 1 (Device.summaries_applied device);
  let prog = selfmod_prog () in
  let mem = Machine.mem (Device.machine device) in
  let f = Asm.fn_addr prog "n" and g = Asm.fn_addr prog "g" in
  Memory.write_u32 mem f (Memory.read_u32 mem g);
  Alcotest.(check int) "emulation sees the patched body" 2 (run ());
  Alcotest.(check bool) "stale summary rejected" true
    (Device.summaries_rejected device > 0);
  Alcotest.(check int) "no further summary applications" 1
    (Device.summaries_applied device)

(* ---------------- detection apps under every configuration ---------------- *)

let leak_signature (o : H.outcome) =
  List.map (fun l -> Format.asprintf "%a" A.Sink_monitor.pp_leak l) o.H.leaks

let test_detection_agreement () =
  List.iter
    (fun (app : H.app) ->
      let base = H.run H.Ndroid_full app in
      let configs =
        [ ("superblocks", H.run ~superblocks:true H.Ndroid_full app);
          ("summaries", H.run ~summaries:true H.Ndroid_full app);
          ("both", H.run ~superblocks:true ~summaries:true H.Ndroid_full app) ]
      in
      List.iter
        (fun (name, o) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: detected (%s)" app.H.app_name name)
            base.H.detected o.H.detected;
          Alcotest.(check (list string))
            (Printf.sprintf "%s: leaks (%s)" app.H.app_name name)
            (leak_signature base) (leak_signature o))
        configs)
    (Ndroid_apps.Cases.all @ Ndroid_apps.Case_studies.all)

(* ---------------- summary persistence through the pipeline cache -------- *)

let test_summary_cache_roundtrip () =
  let module Cache = Ndroid_pipeline.Cache in
  let module Analysis = Ndroid_pipeline.Analysis in
  let dir =
    Filename.concat (Filename.get_temp_dir_name ()) "ndroid-test-summary-cache"
  in
  (match Sys.readdir dir with
   | names -> Array.iter (fun n -> Sys.remove (Filename.concat dir n)) names
   | exception Sys_error _ -> ());
  let cache = Cache.create ~dir in
  Analysis.enable_summary_cache cache;
  let prog = selfmod_prog () in
  let m = Machine.create () in
  Machine.load_program m prog;
  let lib1 = Summary.derive_cached (Machine.mem m) prog in
  let misses_after_first = Cache.misses cache in
  let lib2 = Summary.derive_cached (Machine.mem m) prog in
  Summary.set_persistence ~load:(fun _ -> None) ~save:(fun _ _ -> ());
  Alcotest.(check bool) "first derivation missed" true (misses_after_first > 0);
  Alcotest.(check bool) "second derivation hit the cache" true
    (Cache.hits cache > 0);
  Alcotest.(check int) "same exact count" (Summary.exact_count lib1)
    (Summary.exact_count lib2);
  match Sys.readdir dir with
  | names -> Array.iter (fun n -> Sys.remove (Filename.concat dir n)) names
  | exception Sys_error _ -> ()

let suite =
  [ QCheck_alcotest.to_alcotest prop_three_paths;
    Alcotest.test_case "self-modifying code invalidates superblocks" `Quick
      test_superblock_invalidation;
    Alcotest.test_case "self-modifying code rejects stale summaries" `Quick
      test_summary_staleness;
    Alcotest.test_case "detection apps agree across all taint paths" `Quick
      test_detection_agreement;
    Alcotest.test_case "summaries persist through the pipeline cache" `Quick
      test_summary_cache_roundtrip ]
