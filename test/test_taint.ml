(* Taint label lattice, taint maps, shadow registers. *)

module Taint = Ndroid_taint.Taint
module Taint_map = Ndroid_taint.Taint_map
module Shadow_regs = Ndroid_taint.Shadow_regs

let check_taint = Alcotest.testable Taint.pp Taint.equal

let test_predefined_values () =
  (* TaintDroid's published constants, which the paper's logs use *)
  Alcotest.(check int) "contacts" 0x2 (Taint.to_bits Taint.contacts);
  Alcotest.(check int) "sms" 0x200 (Taint.to_bits Taint.sms);
  Alcotest.(check int) "imei" 0x400 (Taint.to_bits Taint.imei);
  Alcotest.(check int) "imsi" 0x800 (Taint.to_bits Taint.imsi);
  Alcotest.(check int) "iccid" 0x1000 (Taint.to_bits Taint.iccid);
  Alcotest.(check int) "location" 0x1 (Taint.to_bits Taint.location)

let test_paper_log_values () =
  (* 0x202 (Fig. 6) and 0x1602 (Fig. 9) decompose as the paper implies *)
  let qq = Taint.union Taint.contacts Taint.sms in
  Alcotest.(check int) "contacts|sms" 0x202 (Taint.to_bits qq);
  let poc3 =
    List.fold_left Taint.union Taint.clear
      [ Taint.contacts; Taint.sms; Taint.imei; Taint.iccid ]
  in
  Alcotest.(check int) "0x1602" 0x1602 (Taint.to_bits poc3)

let test_union_basics () =
  Alcotest.check check_taint "clear is identity"
    Taint.contacts (Taint.union Taint.clear Taint.contacts);
  Alcotest.(check bool) "clear is clear" true (Taint.is_clear Taint.clear);
  Alcotest.(check bool) "tainted" true (Taint.is_tainted Taint.sms);
  Alcotest.(check bool) "subset" true
    (Taint.subset Taint.sms (Taint.union Taint.sms Taint.imei));
  Alcotest.(check bool) "not subset" false
    (Taint.subset (Taint.union Taint.sms Taint.imei) Taint.sms)

let test_categories () =
  let t = Taint.union Taint.contacts Taint.sms in
  Alcotest.(check (list string)) "names" [ "contacts"; "sms" ] (Taint.categories t);
  Alcotest.(check string) "verbose"
    "0x202(contacts|sms)"
    (Format.asprintf "%a" Taint.pp_verbose t)

let taint_gen = QCheck.map Taint.of_bits (QCheck.int_bound 0xFFFF)

let prop_union_commutative =
  QCheck.Test.make ~name:"taint union commutative" ~count:200
    (QCheck.pair taint_gen taint_gen)
    (fun (a, b) -> Taint.equal (Taint.union a b) (Taint.union b a))

let prop_union_associative =
  QCheck.Test.make ~name:"taint union associative" ~count:200
    (QCheck.triple taint_gen taint_gen taint_gen)
    (fun (a, b, c) ->
      Taint.equal
        (Taint.union a (Taint.union b c))
        (Taint.union (Taint.union a b) c))

let prop_union_idempotent =
  QCheck.Test.make ~name:"taint union idempotent" ~count:200 taint_gen (fun a ->
      Taint.equal (Taint.union a a) a)

let prop_union_monotone =
  QCheck.Test.make ~name:"operands are subsets of the union" ~count:200
    (QCheck.pair taint_gen taint_gen)
    (fun (a, b) -> Taint.subset a (Taint.union a b) && Taint.subset b (Taint.union a b))

let test_map_ranges () =
  let m = Taint_map.create () in
  Taint_map.add_range m 100 8 Taint.sms;
  Alcotest.check check_taint "inside" Taint.sms (Taint_map.get m 104);
  Alcotest.check check_taint "outside" Taint.clear (Taint_map.get m 108);
  Alcotest.check check_taint "range union" Taint.sms (Taint_map.get_range m 96 16);
  Alcotest.(check int) "byte count" 8 (Taint_map.tainted_bytes m);
  Taint_map.clear_range m 100 4;
  Alcotest.(check int) "after clear" 4 (Taint_map.tainted_bytes m)

let test_map_copy_overlapping () =
  let m = Taint_map.create () in
  Taint_map.set m 10 Taint.imei;
  Taint_map.set m 11 Taint.sms;
  (* overlapping forward copy must behave like memmove *)
  Taint_map.copy_range m ~src:10 ~dst:11 ~len:2;
  Alcotest.check check_taint "dst0" Taint.imei (Taint_map.get m 11);
  Alcotest.check check_taint "dst1" Taint.sms (Taint_map.get m 12)

let test_map_set_clears () =
  let m = Taint_map.create () in
  Taint_map.set m 5 Taint.sms;
  Taint_map.set m 5 Taint.clear;
  Alcotest.(check int) "clear removes the entry" 0 (Taint_map.tainted_bytes m)

let test_shadow_regs () =
  let s = Shadow_regs.create 16 in
  Shadow_regs.set s 3 Taint.contacts;
  Shadow_regs.add s 3 Taint.sms;
  Alcotest.check check_taint "union via add" (Taint.of_bits 0x202)
    (Shadow_regs.get s 3);
  Alcotest.(check bool) "any" true (Shadow_regs.any_tainted s);
  let snap = Shadow_regs.snapshot s in
  Shadow_regs.clear_all s;
  Alcotest.(check bool) "cleared" false (Shadow_regs.any_tainted s);
  Shadow_regs.restore s snap;
  Alcotest.check check_taint "restored" (Taint.of_bits 0x202) (Shadow_regs.get s 3)

(* ---- shadow-memory map vs a naive per-byte reference model ---------- *)

(* The reference model: one hashtable entry per tainted byte, every range
   operation a byte loop, copies through a snapshot.  Deliberately the
   simplest possible semantics to check the page-based map against. *)
module Ref_model = struct
  type t = (int, Taint.t) Hashtbl.t

  let create () : t = Hashtbl.create 64
  let get m addr = Option.value ~default:Taint.clear (Hashtbl.find_opt m addr)

  let set m addr tag =
    if Taint.is_clear tag then Hashtbl.remove m addr
    else Hashtbl.replace m addr tag

  let add m addr tag = set m addr (Taint.union (get m addr) tag)

  let set_range m addr n tag =
    for i = 0 to n - 1 do
      set m (addr + i) tag
    done

  let add_range m addr n tag =
    for i = 0 to n - 1 do
      add m (addr + i) tag
    done

  let clear_range m addr n =
    for i = 0 to n - 1 do
      Hashtbl.remove m (addr + i)
    done

  let get_range m addr n =
    let acc = ref Taint.clear in
    for i = 0 to n - 1 do
      acc := Taint.union !acc (get m (addr + i))
    done;
    !acc

  let copy_range m ~src ~dst ~len =
    let snapshot = Array.init len (fun i -> get m (src + i)) in
    for i = 0 to len - 1 do
      set m (dst + i) snapshot.(i)
    done

  let tainted_bytes m = Hashtbl.length m
end

type map_op =
  | Op_set of int * Taint.t
  | Op_add of int * Taint.t
  | Op_set_range of int * int * Taint.t
  | Op_add_range of int * int * Taint.t
  | Op_clear_range of int * int
  | Op_copy_range of int * int * int
  | Op_get_range of int * int

(* Addresses straddle the 4 KiB page boundary at 0x1000 and lengths exceed a
   chunk remainder, so multi-page paths, page summaries and the overlapping
   copy directions all get exercised. *)
let op_gen =
  let open QCheck.Gen in
  let addr = map (fun a -> 0x1000 - 40 + a) (int_bound 8300) in
  let len = int_bound 70 in
  let tag = map Taint.of_bits (int_bound 0xFFFF) in
  frequency
    [ (2, map2 (fun a t -> Op_set (a, t)) addr tag);
      (2, map2 (fun a t -> Op_add (a, t)) addr tag);
      (2, map3 (fun a n t -> Op_set_range (a, n, t)) addr len tag);
      (2, map3 (fun a n t -> Op_add_range (a, n, t)) addr len tag);
      (2, map2 (fun a n -> Op_clear_range (a, n)) addr len);
      (2, map3 (fun s d n -> Op_copy_range (s, d, n)) addr addr len);
      (1, map2 (fun a n -> Op_get_range (a, n)) addr len) ]

let pp_op = function
  | Op_set (a, t) -> Printf.sprintf "set %#x %#x" a (Taint.to_bits t)
  | Op_add (a, t) -> Printf.sprintf "add %#x %#x" a (Taint.to_bits t)
  | Op_set_range (a, n, t) ->
    Printf.sprintf "set_range %#x %d %#x" a n (Taint.to_bits t)
  | Op_add_range (a, n, t) ->
    Printf.sprintf "add_range %#x %d %#x" a n (Taint.to_bits t)
  | Op_clear_range (a, n) -> Printf.sprintf "clear_range %#x %d" a n
  | Op_copy_range (s, d, n) -> Printf.sprintf "copy_range %#x->%#x %d" s d n
  | Op_get_range (a, n) -> Printf.sprintf "get_range %#x %d" a n

let apply_both m r op =
  (match op with
   | Op_set (a, t) ->
     Taint_map.set m a t;
     Ref_model.set r a t
   | Op_add (a, t) ->
     Taint_map.add m a t;
     Ref_model.add r a t
   | Op_set_range (a, n, t) ->
     Taint_map.set_range m a n t;
     Ref_model.set_range r a n t
   | Op_add_range (a, n, t) ->
     Taint_map.add_range m a n t;
     Ref_model.add_range r a n t
   | Op_clear_range (a, n) ->
     Taint_map.clear_range m a n;
     Ref_model.clear_range r a n
   | Op_copy_range (s, d, n) ->
     Taint_map.copy_range m ~src:s ~dst:d ~len:n;
     Ref_model.copy_range r ~src:s ~dst:d ~len:n
   | Op_get_range (a, n) ->
     if not (Taint.equal (Taint_map.get_range m a n) (Ref_model.get_range r a n))
     then
       QCheck.Test.fail_reportf "get_range mismatch after %s" (pp_op op));
  if Taint_map.tainted_bytes m <> Ref_model.tainted_bytes r then
    QCheck.Test.fail_reportf "tainted_bytes mismatch after %s: map=%d ref=%d"
      (pp_op op)
      (Taint_map.tainted_bytes m)
      (Ref_model.tainted_bytes r)

let prop_map_matches_reference =
  QCheck.Test.make ~name:"shadow map matches per-byte reference" ~count:150
    (QCheck.make
       ~print:(fun ops -> String.concat "; " (List.map pp_op ops))
       QCheck.Gen.(list_size (int_range 1 60) op_gen))
    (fun ops ->
      let m = Taint_map.create () and r = Ref_model.create () in
      List.iter (apply_both m r) ops;
      (* full per-byte sweep over the exercised window, including both page
         boundaries the generator can reach *)
      for addr = 0x1000 - 64 to 0x1000 + 8400 do
        if not (Taint.equal (Taint_map.get m addr) (Ref_model.get r addr)) then
          QCheck.Test.fail_reportf "byte %#x: map=%#x ref=%#x" addr
            (Taint.to_bits (Taint_map.get m addr))
            (Taint.to_bits (Ref_model.get r addr))
      done;
      true)

let test_shadow_bounds () =
  let s = Shadow_regs.create 16 in
  Alcotest.check_raises "out of range"
    (Invalid_argument "Shadow_regs: register 16 out of range") (fun () ->
      ignore (Shadow_regs.get s 16))

let suite =
  [ Alcotest.test_case "predefined tag values" `Quick test_predefined_values;
    Alcotest.test_case "paper log tag values" `Quick test_paper_log_values;
    Alcotest.test_case "union basics" `Quick test_union_basics;
    Alcotest.test_case "category names" `Quick test_categories;
    Alcotest.test_case "map ranges" `Quick test_map_ranges;
    Alcotest.test_case "map overlapping copy" `Quick test_map_copy_overlapping;
    Alcotest.test_case "map set clear removes" `Quick test_map_set_clears;
    Alcotest.test_case "shadow registers" `Quick test_shadow_regs;
    Alcotest.test_case "shadow register bounds" `Quick test_shadow_bounds;
    QCheck_alcotest.to_alcotest prop_union_commutative;
    QCheck_alcotest.to_alcotest prop_union_associative;
    QCheck_alcotest.to_alcotest prop_union_idempotent;
    QCheck_alcotest.to_alcotest prop_union_monotone;
    QCheck_alcotest.to_alcotest prop_map_matches_reference ]
