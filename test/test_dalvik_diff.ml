(* Differential tests: random Jbuilder-generated method bodies run through
   the seed reference interpreter ([Interp.invoke_reference]) and the
   pre-linked fast path ([Interp.invoke]) on two fresh, identical VMs.
   Values, taints, heap state, statics, thrown exceptions and the
   bytecodes/invokes counters must all agree. *)

module Vm = Ndroid_dalvik.Vm
module Interp = Ndroid_dalvik.Interp
module Heap = Ndroid_dalvik.Heap
module Dvalue = Ndroid_dalvik.Dvalue
module B = Ndroid_dalvik.Bytecode
module J = Ndroid_dalvik.Jbuilder
module Classes = Ndroid_dalvik.Classes
module Taint = Ndroid_taint.Taint

let gen_cls = "LGen;"
let sub_cls = "LSub;"
let helper_cls = "LHelper;"

(* Support classes shared by every generated program: a static helper, a
   bounded recursive helper (frame-pool depth), and a virtual method with an
   override in a subclass (inline-cache polymorphism). *)
let support_classes () =
  let add =
    J.method_ ~cls:helper_cls ~name:"add" ~shorty:"III" ~registers:8
      [ J.I (B.Binop (B.Add, 0, 6, 7)); J.I (B.Return 0) ]
  in
  let rec_down =
    (* recurse (arg land 15) times: exercises nested pooled frames *)
    J.method_ ~cls:helper_cls ~name:"recDown" ~shorty:"II" ~registers:8
      [ J.I (B.Binop_lit (B.And, 0, 7, 15l));
        J.Ifz_l (B.Le, 0, "base");
        J.I (B.Binop_lit (B.Sub, 1, 0, 1l));
        J.I (B.Invoke (B.Static, { B.m_class = helper_cls; m_name = "recDown" }, [ 1 ]));
        J.I (B.Move_result 2);
        J.I (B.Binop (B.Add, 3, 0, 2));
        J.I (B.Return 3);
        J.L "base";
        J.I (B.Return 0) ]
  in
  let vget_sub =
    J.method_ ~cls:sub_cls ~name:"vget" ~shorty:"I" ~static:false ~registers:4
      [ J.I (B.Iget (0, 3, { B.f_class = sub_cls; f_name = "g" }));
        J.I (B.Binop_lit (B.Mul, 1, 0, 3l));
        J.I (B.Return 1) ]
  in
  [ J.class_ ~name:helper_cls [ add; rec_down ];
    J.class_ ~name:sub_cls ~super:gen_cls ~fields:[ "h" ] [ vget_sub ] ]

(* ---------------- random method bodies ---------------- *)

(* Straight-line items with forward-only branches (to "end"), so every
   generated body terminates.  Registers 0..5 are locals; the single int
   parameter lands in v7 (8 registers, shorty "II"). *)
let item_gen : J.item QCheck.Gen.t =
  let open QCheck.Gen in
  let reg = int_range 0 5 in
  let any_reg = int_range 0 7 in
  let binop =
    oneofl [ B.Add; B.Sub; B.Mul; B.Div; B.Rem; B.And; B.Or; B.Xor; B.Shl;
             B.Shr; B.Ushr ]
  in
  let unop =
    oneofl [ B.Neg; B.Not; B.Int_to_long; B.Int_to_float; B.Int_to_double;
             B.Long_to_int; B.Float_to_int; B.Double_to_int;
             B.Float_to_double; B.Double_to_float ]
  in
  let cmp = oneofl [ B.Eq; B.Ne; B.Lt; B.Ge; B.Gt; B.Le ] in
  let const_val =
    oneof
      [ map (fun n -> Dvalue.Int (Int32.of_int n)) (int_range (-8) 40);
        map (fun n -> Dvalue.Long (Int64.of_int n)) (int_range (-4) 20);
        map (fun f -> Dvalue.Float f) (oneofl [ 0.0; 1.5; -2.25 ]);
        map (fun f -> Dvalue.Double f) (oneofl [ 0.0; 3.5; -0.125 ]);
        return Dvalue.Null ]
  in
  let fref =
    map
      (fun name -> { B.f_class = gen_cls; f_name = name })
      (oneofl [ "f"; "g" ])
  in
  frequency
    [ (6, map3 (fun op (d, a) b -> J.I (B.Binop (op, d, a, b)))
         binop (pair reg any_reg) any_reg);
      (2, map3 (fun op (d, a) b -> J.I (B.Binop_wide (op, d, a, b)))
         binop (pair reg any_reg) any_reg);
      (1, map3 (fun op (d, a) b -> J.I (B.Binop_float (op, d, a, b)))
         (oneofl [ B.Add; B.Sub; B.Mul; B.Div; B.Rem ]) (pair reg any_reg) any_reg);
      (3, map3 (fun op (d, a) lit -> J.I (B.Binop_lit (op, d, a, lit)))
         binop (pair reg any_reg)
         (map Int32.of_int (int_range (-3) 7)));
      (2, map2 (fun op (d, s) -> J.I (B.Unop (op, d, s))) unop (pair reg any_reg));
      (5, map2 (fun r v -> J.I (B.Const (r, v))) reg const_val);
      (1, map2 (fun r n -> J.I (B.Const_string (r, "s" ^ string_of_int n)))
         reg (int_range 0 5));
      (3, map2 (fun d s -> J.I (B.Move (d, s))) reg any_reg);
      (1, map (fun r -> J.I (B.Move_result r)) reg);
      (2, map3 (fun d a b -> J.I (B.Cmp_long (d, a, b))) reg any_reg any_reg);
      (3, map3 (fun c a b -> J.If_l (c, a, b, "end")) cmp any_reg any_reg);
      (2, map2 (fun c a -> J.Ifz_l (c, a, "end")) cmp any_reg);
      (2, map (fun r -> J.I (B.New_instance (r, gen_cls))) reg);
      (1, map (fun r -> J.I (B.New_instance (r, sub_cls))) reg);
      (2, map2 (fun d n -> J.I (B.New_array (d, n, "I"))) reg any_reg);
      (2, map2 (fun d a -> J.I (B.Array_length (d, a))) reg any_reg);
      (2, map3 (fun v a i -> J.I (B.Aget (v, a, i))) reg any_reg any_reg);
      (2, map3 (fun v a i -> J.I (B.Aput (v, a, i))) any_reg any_reg any_reg);
      (3, map3 (fun v o f -> J.I (B.Iget (v, o, f))) reg any_reg fref);
      (3, map3 (fun v o f -> J.I (B.Iput (v, o, f))) any_reg any_reg fref);
      (2, map (fun v -> J.I (B.Sget (v, { B.f_class = gen_cls; f_name = "s" }))) reg);
      (2, map (fun v -> J.I (B.Sput (v, { B.f_class = gen_cls; f_name = "s" }))) any_reg);
      (3, map2 (fun a b ->
           J.I (B.Invoke (B.Static, { B.m_class = helper_cls; m_name = "add" },
                          [ a; b ])))
         any_reg any_reg);
      (2, map (fun a ->
           J.I (B.Invoke (B.Static, { B.m_class = helper_cls; m_name = "recDown" },
                          [ a ])))
         any_reg);
      (2, map (fun o ->
           J.I (B.Invoke (B.Virtual, { B.m_class = gen_cls; m_name = "vget" },
                          [ o ])))
         any_reg);
      (1, map (fun r -> J.I (B.Throw r)) any_reg);
      (1, map (fun r -> J.I (B.Check_cast (r, gen_cls))) reg);
      (2, map2 (fun d r -> J.I (B.Instance_of (d, r, gen_cls))) reg any_reg);
      (1, map2 (fun r first ->
           J.Packed_switch_l (r, Int32.of_int first, [ "end"; "end" ]))
         any_reg (int_range (-2) 2));
      (1, map (fun r ->
           J.Sparse_switch_l (r, [ (1l, "end"); (7l, "end") ]))
         any_reg) ]

type case = { items : J.item list; handled : bool; arg : int; tainted : bool }

let case_gen =
  let open QCheck.Gen in
  map
    (fun (items, (handled, arg, tainted)) -> { items; handled; arg; tainted })
    (pair
       (list_size (int_range 1 40) item_gen)
       (triple bool (int_range (-40) 1000) bool))

let cmp_str = function
  | B.Eq -> "eq" | B.Ne -> "ne" | B.Lt -> "lt"
  | B.Ge -> "ge" | B.Gt -> "gt" | B.Le -> "le"

let print_case c =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "arg=%d tainted=%b handled=%b\n" c.arg c.tainted c.handled);
  List.iter
    (fun item ->
      let line =
        match item with
        | J.I insn -> B.to_string insn
        | J.L l -> l ^ ":"
        | J.If_l (cmp, a, bb, l) ->
          Printf.sprintf "if-%s v%d, v%d -> %s" (cmp_str cmp) a bb l
        | J.Ifz_l (cmp, a, l) ->
          Printf.sprintf "if-%sz v%d -> %s" (cmp_str cmp) a l
        | J.Goto_l l -> "goto " ^ l
        | J.Packed_switch_l (r, first, ls) ->
          Printf.sprintf "packed-switch v%d first=%ld -> %s" r first
            (String.concat "," ls)
        | J.Sparse_switch_l (r, entries) ->
          Printf.sprintf "sparse-switch v%d -> %s" r
            (String.concat ","
               (List.map (fun (k, l) -> Printf.sprintf "%ld:%s" k l) entries))
      in
      Buffer.add_string b ("  " ^ line ^ "\n"))
    c.items;
  Buffer.contents b

(* ---------------- state dumps for comparison ---------------- *)

let taint_str t = Format.asprintf "%a" Taint.pp t

let heap_dump vm =
  let objs = ref [] in
  Heap.iter vm.Vm.heap (fun o -> objs := o :: !objs);
  let objs = List.sort (fun a b -> compare a.Heap.id b.Heap.id) !objs in
  String.concat "\n"
    (List.map
       (fun o ->
         let kind =
           match o.Heap.kind with
           | Heap.String s -> Printf.sprintf "str %S" s
           | Heap.Array { elem_type; elems } ->
             Printf.sprintf "arr %s [%s]" elem_type
               (String.concat ";" (Array.to_list (Array.map Dvalue.to_string elems)))
           | Heap.Instance { cls; values; taints } ->
             Printf.sprintf "obj %s [%s] [%s]" cls
               (String.concat ";" (Array.to_list (Array.map Dvalue.to_string values)))
               (String.concat ";" (Array.to_list (Array.map taint_str taints)))
         in
         Printf.sprintf "#%d %s taint=%s" o.Heap.id kind (taint_str o.Heap.taint))
       objs)

let statics_dump vm =
  let entries =
    Hashtbl.fold
      (fun (c, f) cell acc ->
        let v, t = !cell in
        (Printf.sprintf "%s->%s = %s %s" c f (Dvalue.to_string v) (taint_str t))
        :: acc)
      vm.Vm.statics []
  in
  String.concat "\n" (List.sort compare entries)

let outcome_str vm = function
  | Ok (v, t) -> Printf.sprintf "ret %s taint=%s" (Dvalue.to_string v) (taint_str t)
  | Error (`Thrown ((v, t) : Vm.tval)) ->
    let desc =
      match v with
      | Dvalue.Obj id -> (
        match (Heap.get vm.Vm.heap id).Heap.kind with
        | Heap.Instance { cls; _ } -> Printf.sprintf "obj#%d %s" id cls
        | Heap.String s -> Printf.sprintf "obj#%d str %S" id s
        | Heap.Array _ -> Printf.sprintf "obj#%d arr" id)
      | v -> Dvalue.to_string v
    in
    Printf.sprintf "throw %s taint=%s" desc (taint_str t)
  | Error (`Dvm_error msg) -> "dvm_error " ^ msg
  | Error (`Wrong_arity msg) -> "wrong_arity " ^ msg

(* ---------------- the differential run ---------------- *)

let build_main c =
  let handlers = if c.handled then [ ("begin", "end", "h") ] else [] in
  let items =
    (J.L "begin" :: c.items)
    @ [ J.L "end"; J.I (B.Return 0) ]
    @ (if c.handled then
         [ J.L "h"; J.I (B.Move_exception 1); J.I (B.Return 1) ]
       else [])
  in
  J.method_ ~cls:gen_cls ~name:"main" ~shorty:"II" ~registers:8 ~handlers items

let fresh_vm main ~track =
  let vm = Vm.create () in
  vm.Vm.track_taint <- track;
  let vget =
    J.method_ ~cls:gen_cls ~name:"vget" ~shorty:"I" ~static:false ~registers:4
      [ J.I (B.Iget (0, 3, { B.f_class = gen_cls; f_name = "f" }));
        J.I (B.Return 0) ]
  in
  Vm.define_class vm
    (J.class_ ~name:gen_cls ~fields:[ "f"; "g" ] ~static_fields:[ "s" ]
       [ vget; main ]);
  List.iter (Vm.define_class vm) (support_classes ());
  vm

let run_one interp vm main arg =
  match interp vm main [| arg |] with
  | r -> Ok r
  | exception Vm.Java_throw tv -> Error (`Thrown tv)
  | exception Vm.Dvm_error msg -> Error (`Dvm_error msg)
  | exception Interp.Wrong_arity msg -> Error (`Wrong_arity msg)

let differential ~track c =
  let main = build_main c in
  let taint = if c.tainted then Taint.imei else Taint.clear in
  let arg : Vm.tval = (Dvalue.Int (Int32.of_int c.arg), taint) in
  let vm_ref = fresh_vm main ~track in
  let vm_fast = fresh_vm main ~track in
  let ref_main = Vm.find_method vm_ref gen_cls "main" in
  let fast_main = Vm.find_method vm_fast gen_cls "main" in
  let ro = run_one Interp.invoke_reference vm_ref ref_main arg in
  let fo = run_one Interp.invoke vm_fast fast_main arg in
  let check what a b =
    if a <> b then
      QCheck.Test.fail_reportf "%s differs (track=%b)\nreference: %s\nfast:      %s"
        what track a b
  in
  check "outcome" (outcome_str vm_ref ro) (outcome_str vm_fast fo);
  check "vm.ret"
    (outcome_str vm_ref (Ok vm_ref.Vm.ret))
    (outcome_str vm_fast (Ok vm_fast.Vm.ret));
  check "heap" (heap_dump vm_ref) (heap_dump vm_fast);
  check "statics" (statics_dump vm_ref) (statics_dump vm_fast);
  check "bytecode count"
    (string_of_int vm_ref.Vm.counters.Vm.bytecodes)
    (string_of_int vm_fast.Vm.counters.Vm.bytecodes);
  check "invoke count"
    (string_of_int vm_ref.Vm.counters.Vm.invokes)
    (string_of_int vm_fast.Vm.counters.Vm.invokes);
  true

let prop_differential_taint_on =
  QCheck.Test.make ~name:"fast path == reference (taint on)" ~count:400
    (QCheck.make ~print:print_case case_gen)
    (differential ~track:true)

let prop_differential_taint_off =
  QCheck.Test.make ~name:"fast path == reference (taint off)" ~count:200
    (QCheck.make ~print:print_case case_gen)
    (differential ~track:false)

let suite =
  [ QCheck_alcotest.to_alcotest prop_differential_taint_on;
    QCheck_alcotest.to_alcotest prop_differential_taint_off ]
