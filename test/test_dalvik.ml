(* Dalvik VM: interpreter semantics, TaintDroid propagation, heap + GC. *)

module Vm = Ndroid_dalvik.Vm
module Interp = Ndroid_dalvik.Interp
module Heap = Ndroid_dalvik.Heap
module Dvalue = Ndroid_dalvik.Dvalue
module B = Ndroid_dalvik.Bytecode
module J = Ndroid_dalvik.Jbuilder
module Classes = Ndroid_dalvik.Classes
module Taint = Ndroid_taint.Taint

let cls = "LTest;"
let check_taint = Alcotest.testable Taint.pp Taint.equal

let fresh_vm methods =
  let vm = Vm.create () in
  Ndroid_android.Framework.install vm;
  Vm.define_class vm
    (J.class_ ~name:cls ~super:"Ljava/lang/Object;" ~fields:[ "f"; "g" ]
       ~static_fields:[ "s" ] methods);
  vm

let run vm name args = Interp.invoke_by_name vm cls name args

let tv ?(taint = Taint.clear) v : Vm.tval = (v, taint)
let int32 n = Dvalue.Int (Int32.of_int n)

let test_arithmetic () =
  let m =
    J.method_ ~cls ~name:"calc" ~shorty:"III" ~registers:8
      [ (* p0 at v6, p1 at v7 *)
        J.I (B.Binop (B.Add, 0, 6, 7));
        J.I (B.Binop (B.Mul, 1, 0, 7));
        J.I (B.Binop_lit (B.Sub, 2, 1, 5l));
        J.I (B.Return 2) ]
  in
  let vm = fresh_vm [ m ] in
  let v, _ = run vm "calc" [| tv (int32 10); tv (int32 4) |] in
  (* ((10+4)*4)-5 = 51 *)
  Alcotest.(check bool) "result" true (Dvalue.equal v (int32 51))

let test_control_flow () =
  let m =
    J.method_ ~cls ~name:"max" ~shorty:"III" ~registers:8
      [ J.If_l (B.Ge, 6, 7, "first");
        J.I (B.Return 7);
        J.L "first";
        J.I (B.Return 6) ]
  in
  let vm = fresh_vm [ m ] in
  let v, _ = run vm "max" [| tv (int32 3); tv (int32 9) |] in
  Alcotest.(check bool) "max" true (Dvalue.equal v (int32 9))

let test_loop_sum () =
  let m =
    J.method_ ~cls ~name:"sum" ~shorty:"II" ~registers:6
      [ J.I (B.Const (0, int32 0));
        J.L "loop";
        J.Ifz_l (B.Le, 5, "done");
        J.I (B.Binop (B.Add, 0, 0, 5));
        J.I (B.Binop_lit (B.Sub, 5, 5, 1l));
        J.Goto_l "loop";
        J.L "done";
        J.I (B.Return 0) ]
  in
  let vm = fresh_vm [ m ] in
  let v, _ = run vm "sum" [| tv (int32 100) |] in
  Alcotest.(check bool) "sum 1..100" true (Dvalue.equal v (int32 5050))

let test_wide_and_float () =
  let m =
    J.method_ ~cls ~name:"mix" ~shorty:"DJD" ~registers:8
      [ (* p0 long at v6, p1 double at v7 *)
        J.I (B.Unop (B.Int_to_double, 0, 6));
        J.I (B.Binop_double (B.Mul, 1, 0, 7));
        J.I (B.Return 1) ]
  in
  let vm = fresh_vm [ m ] in
  let v, _ =
    run vm "mix" [| tv (Dvalue.Long 6L); tv (Dvalue.Double 2.5) |]
  in
  Alcotest.(check (float 0.001)) "6 * 2.5" 15.0 (Dvalue.as_double v)

let test_taint_through_arithmetic () =
  let m =
    J.method_ ~cls ~name:"mixt" ~shorty:"III" ~registers:8
      [ J.I (B.Binop (B.Xor, 0, 6, 7)); J.I (B.Return 0) ]
  in
  let vm = fresh_vm [ m ] in
  let _, t =
    run vm "mixt" [| tv ~taint:Taint.imei (int32 1); tv ~taint:Taint.sms (int32 2) |]
  in
  Alcotest.check check_taint "union of operand taints"
    (Taint.union Taint.imei Taint.sms) t

let test_taint_cleared_by_const () =
  let m =
    J.method_ ~cls ~name:"wash" ~shorty:"II" ~registers:6
      [ J.I (B.Move (0, 5)); J.I (B.Const (0, int32 7)); J.I (B.Return 0) ]
  in
  let vm = fresh_vm [ m ] in
  let _, t = run vm "wash" [| tv ~taint:Taint.imei (int32 1) |] in
  Alcotest.check check_taint "const clears" Taint.clear t

let test_taint_array_single_tag () =
  (* TaintDroid stores ONE tag per array: writing a tainted element taints
     reads of every element *)
  let m =
    J.method_ ~cls ~name:"arr" ~shorty:"II" ~registers:8
      [ J.I (B.Const (0, int32 4));
        J.I (B.New_array (1, 0, "I"));
        J.I (B.Const (2, int32 0));
        J.I (B.Aput (7, 1, 2)) (* tainted value at index 0 *);
        J.I (B.Const (3, int32 3));
        J.I (B.Const (4, int32 9));
        J.I (B.Aput (4, 1, 3)) (* clean value at index 3 *);
        J.I (B.Aget (5, 1, 3)) (* read the clean slot *);
        J.I (B.Return 5) ]
  in
  let vm = fresh_vm [ m ] in
  let v, t = run vm "arr" [| tv ~taint:Taint.contacts (int32 1) |] in
  Alcotest.(check bool) "value" true (Dvalue.equal v (int32 9));
  Alcotest.check check_taint "whole-array tag" Taint.contacts t

let test_taint_instance_fields_separate () =
  (* instance fields have per-field tags, interleaved with values (Fig. 1) *)
  let m =
    J.method_ ~cls ~name:"fields" ~shorty:"II" ~registers:8
      [ J.I (B.New_instance (0, cls));
        J.I (B.Iput (7, 0, { B.f_class = cls; f_name = "f" }));
        J.I (B.Const (1, int32 5));
        J.I (B.Iput (1, 0, { B.f_class = cls; f_name = "g" }));
        J.I (B.Iget (2, 0, { B.f_class = cls; f_name = "g" }));
        J.I (B.Return 2) ]
  in
  let vm = fresh_vm [ m ] in
  let _, t = run vm "fields" [| tv ~taint:Taint.imei (int32 1) |] in
  Alcotest.check check_taint "sibling field untainted" Taint.clear t;
  let m2 =
    J.method_ ~cls ~name:"fields2" ~shorty:"II" ~registers:8
      [ J.I (B.New_instance (0, cls));
        J.I (B.Iput (7, 0, { B.f_class = cls; f_name = "f" }));
        J.I (B.Iget (2, 0, { B.f_class = cls; f_name = "f" }));
        J.I (B.Return 2) ]
  in
  let vm2 = fresh_vm [ m2 ] in
  let _, t2 = run vm2 "fields2" [| tv ~taint:Taint.imei (int32 1) |] in
  Alcotest.check check_taint "same field tainted" Taint.imei t2

let test_taint_static_fields () =
  let sref = { B.f_class = cls; f_name = "s" } in
  let m =
    J.method_ ~cls ~name:"stat" ~shorty:"II" ~registers:6
      [ J.I (B.Sput (5, sref)); J.I (B.Sget (0, sref)); J.I (B.Return 0) ]
  in
  let vm = fresh_vm [ m ] in
  let _, t = run vm "stat" [| tv ~taint:Taint.sms (int32 1) |] in
  Alcotest.check check_taint "static field tag" Taint.sms t

let test_taint_off_in_vanilla () =
  let m =
    J.method_ ~cls ~name:"mixt" ~shorty:"III" ~registers:8
      [ J.I (B.Binop (B.Add, 0, 6, 7)); J.I (B.Return 0) ]
  in
  let vm = fresh_vm [ m ] in
  vm.Vm.track_taint <- false;
  let _, t =
    run vm "mixt" [| tv ~taint:Taint.imei (int32 1); tv ~taint:Taint.sms (int32 2) |]
  in
  Alcotest.check check_taint "vanilla drops tags" Taint.clear t

let test_exception_handling () =
  let m =
    J.method_ ~cls ~name:"divide" ~shorty:"III" ~registers:8
      ~handlers:[ ("try_start", "try_end", "handler") ]
      [ J.L "try_start";
        J.I (B.Binop (B.Div, 0, 6, 7));
        J.L "try_end";
        J.I (B.Return 0);
        J.L "handler";
        J.I (B.Move_exception 1);
        J.I (B.Const (0, int32 (-1)));
        J.I (B.Return 0) ]
  in
  let vm = fresh_vm [ m ] in
  let v, _ = run vm "divide" [| tv (int32 10); tv (int32 2) |] in
  Alcotest.(check bool) "normal" true (Dvalue.equal v (int32 5));
  let v, _ = run vm "divide" [| tv (int32 10); tv (int32 0) |] in
  Alcotest.(check bool) "caught" true (Dvalue.equal v (int32 (-1)))

let test_uncaught_exception_escapes () =
  let m =
    J.method_ ~cls ~name:"boom" ~shorty:"V" ~registers:4
      [ J.I (B.Const_string (0, "bad"));
        J.I (B.Throw 0) ]
  in
  let vm = fresh_vm [ m ] in
  Alcotest.(check bool) "escapes" true
    (match run vm "boom" [||] with
     | exception Vm.Java_throw _ -> true
     | _ -> false)

let test_exception_carries_taint () =
  let m =
    J.method_ ~cls ~name:"boomt" ~shorty:"VL" ~registers:4
      [ J.I (B.Throw 3) ]
  in
  let vm = fresh_vm [ m ] in
  let v, _ = Vm.new_string vm ~taint:Taint.sms "secret" in
  Alcotest.(check bool) "taint travels with throw" true
    (match run vm "boomt" [| (v, Taint.sms) |] with
     | exception Vm.Java_throw (_, t) -> Taint.equal t Taint.sms
     | _ -> false)

let test_virtual_dispatch () =
  let base_m =
    J.method_ ~cls ~name:"who" ~shorty:"I" ~static:false ~registers:4
      [ J.I (B.Const (0, int32 1)); J.I (B.Return 0) ]
  in
  let vm = fresh_vm [ base_m ] in
  Vm.define_class vm
    (J.class_ ~name:"LSub;" ~super:cls
       [ J.method_ ~cls:"LSub;" ~name:"who" ~shorty:"I" ~static:false ~registers:4
           [ J.I (B.Const (0, int32 2)); J.I (B.Return 0) ] ]);
  let caller =
    J.method_ ~cls:"LCaller;" ~name:"call" ~shorty:"IL" ~registers:6
      [ J.I (B.Invoke (B.Virtual, { B.m_class = cls; m_name = "who" }, [ 5 ]));
        J.I (B.Move_result 0);
        J.I (B.Return 0) ]
  in
  Vm.define_class vm (J.class_ ~name:"LCaller;" [ caller ]);
  let sub = Heap.alloc_instance vm.Vm.heap "LSub;" 2 in
  let v, _ =
    Interp.invoke_by_name vm "LCaller;" "call"
      [| tv (Dvalue.Obj sub.Heap.id) |]
  in
  Alcotest.(check bool) "dispatches to subclass" true (Dvalue.equal v (int32 2))

let test_string_intrinsics () =
  let vm = fresh_vm [] in
  let s1, _ = Vm.new_string vm ~taint:Taint.contacts "Vin" in
  let s2, _ = Vm.new_string vm ~taint:Taint.sms "cent" in
  let v, t =
    Interp.invoke_by_name vm "Ljava/lang/String;" "concat"
      [| (s1, Taint.contacts); (s2, Taint.sms) |]
  in
  Alcotest.(check string) "concat" "Vincent" (Vm.string_of_value vm v);
  Alcotest.check check_taint "concat taint union" (Taint.of_bits 0x202) t;
  let v, t =
    Interp.invoke_by_name vm "Ljava/lang/String;" "length" [| (s1, Taint.contacts) |]
  in
  Alcotest.(check bool) "length" true (Dvalue.equal v (int32 3));
  Alcotest.check check_taint "length tainted" Taint.contacts t

let test_stringbuilder () =
  let vm = fresh_vm [] in
  let sb = Heap.alloc_instance vm.Vm.heap "Ljava/lang/StringBuilder;" 1 in
  let this = tv (Dvalue.Obj sb.Heap.id) in
  ignore (Interp.invoke_by_name vm "Ljava/lang/StringBuilder;" "<init>" [| this |]);
  let s, _ = Vm.new_string vm ~taint:Taint.imei "357" in
  ignore
    (Interp.invoke_by_name vm "Ljava/lang/StringBuilder;" "append"
       [| this; (s, Taint.imei) |]);
  ignore
    (Interp.invoke_by_name vm "Ljava/lang/StringBuilder;" "appendInt"
       [| this; tv (int32 42) |]);
  let v, t =
    Interp.invoke_by_name vm "Ljava/lang/StringBuilder;" "toString" [| this |]
  in
  Alcotest.(check string) "builder content" "35742" (Vm.string_of_value vm v);
  Alcotest.check check_taint "accumulated taint" Taint.imei t

let test_gc_moves_objects () =
  let vm = fresh_vm [] in
  let o = Heap.alloc_string vm.Vm.heap "movable" in
  let addr0 = o.Heap.addr in
  Heap.compact vm.Vm.heap;
  Alcotest.(check bool) "address changed" true (o.Heap.addr <> addr0);
  Alcotest.(check string) "content survives" "movable"
    (Heap.string_value vm.Vm.heap o.Heap.id);
  Alcotest.(check bool) "reverse lookup updated" true
    (match Heap.find_by_addr vm.Vm.heap o.Heap.addr with
     | Some o' -> o'.Heap.id = o.Heap.id
     | None -> false);
  Alcotest.(check bool) "old address stale" true
    (match Heap.find_by_addr vm.Vm.heap addr0 with
     | None -> true
     | Some o' -> o'.Heap.id <> o.Heap.id)

let test_array_bounds () =
  let m =
    J.method_ ~cls ~name:"oob" ~shorty:"I" ~registers:6
      [ J.I (B.Const (0, int32 2));
        J.I (B.New_array (1, 0, "I"));
        J.I (B.Const (2, int32 5));
        J.I (B.Aget (3, 1, 2));
        J.I (B.Return 3) ]
  in
  let vm = fresh_vm [ m ] in
  Alcotest.(check bool) "throws" true
    (match run vm "oob" [||] with exception Vm.Java_throw _ -> true | _ -> false)

let test_wrong_arity () =
  let m =
    J.method_ ~cls ~name:"two" ~shorty:"III" ~registers:8 [ J.I (B.Return 6) ]
  in
  let vm = fresh_vm [ m ] in
  Alcotest.(check bool) "arity mismatch rejected" true
    (match run vm "two" [| tv (int32 1) |] with
     | exception Interp.Wrong_arity _ -> true
     | _ -> false)

let test_counters () =
  let m =
    J.method_ ~cls ~name:"count" ~shorty:"V" ~registers:4
      [ J.I B.Nop; J.I B.Nop; J.I B.Return_void ]
  in
  let vm = fresh_vm [ m ] in
  let before = vm.Vm.counters.Vm.bytecodes in
  ignore (run vm "count" [||]);
  Alcotest.(check int) "3 bytecodes" 3 (vm.Vm.counters.Vm.bytecodes - before)

let suite =
  [ Alcotest.test_case "arithmetic" `Quick test_arithmetic;
    Alcotest.test_case "control flow" `Quick test_control_flow;
    Alcotest.test_case "loop sum" `Quick test_loop_sum;
    Alcotest.test_case "wide + float values" `Quick test_wide_and_float;
    Alcotest.test_case "taint through arithmetic" `Quick
      test_taint_through_arithmetic;
    Alcotest.test_case "const clears taint" `Quick test_taint_cleared_by_const;
    Alcotest.test_case "array carries one tag" `Quick test_taint_array_single_tag;
    Alcotest.test_case "per-field instance tags" `Quick
      test_taint_instance_fields_separate;
    Alcotest.test_case "static field tags" `Quick test_taint_static_fields;
    Alcotest.test_case "vanilla drops tags" `Quick test_taint_off_in_vanilla;
    Alcotest.test_case "exception handling" `Quick test_exception_handling;
    Alcotest.test_case "uncaught exception escapes" `Quick
      test_uncaught_exception_escapes;
    Alcotest.test_case "exception carries taint" `Quick test_exception_carries_taint;
    Alcotest.test_case "virtual dispatch" `Quick test_virtual_dispatch;
    Alcotest.test_case "string intrinsics" `Quick test_string_intrinsics;
    Alcotest.test_case "stringbuilder" `Quick test_stringbuilder;
    Alcotest.test_case "GC moves objects" `Quick test_gc_moves_objects;
    Alcotest.test_case "array bounds" `Quick test_array_bounds;
    Alcotest.test_case "wrong arity" `Quick test_wrong_arity;
    Alcotest.test_case "bytecode counter" `Quick test_counters ]

let test_packed_switch () =
  let m =
    J.method_ ~cls ~name:"sw" ~shorty:"II" ~registers:6
      [ J.Packed_switch_l (5, 10l, [ "ten"; "eleven"; "twelve" ]);
        J.I (B.Const (0, int32 (-1)));
        J.I (B.Return 0);
        J.L "ten";
        J.I (B.Const (0, int32 100));
        J.I (B.Return 0);
        J.L "eleven";
        J.I (B.Const (0, int32 110));
        J.I (B.Return 0);
        J.L "twelve";
        J.I (B.Const (0, int32 120));
        J.I (B.Return 0) ]
  in
  let vm = fresh_vm [ m ] in
  let check input expected =
    let v, _ = run vm "sw" [| tv (int32 input) |] in
    Alcotest.(check bool) (string_of_int input) true (Dvalue.equal v (int32 expected))
  in
  check 10 100;
  check 11 110;
  check 12 120;
  check 9 (-1);
  check 13 (-1)

let test_sparse_switch () =
  let m =
    J.method_ ~cls ~name:"ssw" ~shorty:"II" ~registers:6
      [ J.Sparse_switch_l (5, [ (100l, "a"); (-5l, "b") ]);
        J.I (B.Const (0, int32 0));
        J.I (B.Return 0);
        J.L "a";
        J.I (B.Const (0, int32 1));
        J.I (B.Return 0);
        J.L "b";
        J.I (B.Const (0, int32 2));
        J.I (B.Return 0) ]
  in
  let vm = fresh_vm [ m ] in
  let check input expected =
    let v, _ = run vm "ssw" [| tv (int32 input) |] in
    Alcotest.(check bool) (string_of_int input) true (Dvalue.equal v (int32 expected))
  in
  check 100 1;
  check (-5) 2;
  check 0 0

let suite =
  suite
  @ [ Alcotest.test_case "packed-switch" `Quick test_packed_switch;
      Alcotest.test_case "sparse-switch" `Quick test_sparse_switch ]

(* ---- PR 4 regressions: resolution correctness under the fast path ---- *)

let mref name = { B.m_class = cls; m_name = name }

(* Overloads (same name, different arity) must dispatch by input count; the
   seed's name-only scan picked whichever was defined first. *)
let test_overload_arity () =
  let pick1 =
    J.method_ ~cls ~name:"pick" ~shorty:"II" ~registers:4
      [ J.I (B.Binop_lit (B.Add, 0, 3, 1l)); J.I (B.Return 0) ]
  in
  let pick2 =
    J.method_ ~cls ~name:"pick" ~shorty:"III" ~registers:4
      [ J.I (B.Binop (B.Mul, 0, 2, 3)); J.I (B.Return 0) ]
  in
  let vp0 =
    J.method_ ~cls ~name:"vpick" ~shorty:"I" ~static:false ~registers:4
      [ J.I (B.Const (0, int32 9)); J.I (B.Return 0) ]
  in
  let vp1 =
    J.method_ ~cls ~name:"vpick" ~shorty:"II" ~static:false ~registers:4
      [ J.I (B.Binop_lit (B.Mul, 0, 3, 100l)); J.I (B.Return 0) ]
  in
  let drv =
    J.method_ ~cls ~name:"drv" ~shorty:"I" ~registers:8
      [ J.I (B.Const (0, int32 5));
        J.I (B.Invoke (B.Static, mref "pick", [ 0 ]));
        J.I (B.Move_result 1);
        (* 6 *)
        J.I (B.Const (2, int32 3));
        J.I (B.Invoke (B.Static, mref "pick", [ 0; 2 ]));
        J.I (B.Move_result 3);
        (* 15 *)
        J.I (B.New_instance (4, cls));
        J.I (B.Invoke (B.Virtual, mref "vpick", [ 4 ]));
        J.I (B.Move_result 5);
        (* 9 *)
        J.I (B.Invoke (B.Virtual, mref "vpick", [ 4; 0 ]));
        J.I (B.Move_result 6);
        (* 500 *)
        J.I (B.Binop (B.Add, 7, 1, 3));
        J.I (B.Binop (B.Add, 7, 7, 5));
        J.I (B.Binop (B.Add, 7, 7, 6));
        J.I (B.Return 7) ]
  in
  let vm = fresh_vm [ pick1; pick2; vp0; vp1; drv ] in
  let v, _ = run vm "drv" [||] in
  Alcotest.(check bool) "overloads dispatch by arity" true
    (Dvalue.equal v (int32 (6 + 15 + 9 + 500)))

(* Statics are keyed by a (class, field) pair; the seed's "cls.field" string
   key confused LA; / b.c with LA;.b / c. *)
let test_static_pair_key () =
  let vm = fresh_vm [] in
  let r1 = Vm.static_ref vm "LA;" "b.c" in
  let r2 = Vm.static_ref vm "LA;.b" "c" in
  r1 := tv (int32 42);
  Alcotest.(check bool) "colliding key untouched" true
    (Dvalue.equal (fst !r2) Dvalue.zero);
  r2 := tv (int32 7);
  Alcotest.(check bool) "first cell intact" true
    (Dvalue.equal (fst !r1) (int32 42))

(* One virtual call site fed alternating receiver classes: the monomorphic
   inline cache must re-resolve on class mismatch, never serve a stale hit. *)
let test_inline_cache_polymorphism () =
  let sub = "LTestSub;" in
  let base_m =
    J.method_ ~cls ~name:"tag" ~shorty:"I" ~static:false ~registers:4
      [ J.I (B.Const (0, int32 1)); J.I (B.Return 0) ]
  in
  let sub_m =
    J.method_ ~cls:sub ~name:"tag" ~shorty:"I" ~static:false ~registers:4
      [ J.I (B.Const (0, int32 100)); J.I (B.Return 0) ]
  in
  let drv =
    J.method_ ~cls ~name:"icdrv" ~shorty:"II" ~registers:8
      [ J.I (B.New_instance (0, cls));
        J.I (B.New_instance (1, sub));
        J.I (B.Const (2, int32 0));
        J.L "loop";
        J.Ifz_l (B.Le, 7, "done");
        J.I (B.Binop_lit (B.And, 3, 7, 1l));
        J.I (B.Move (4, 0));
        J.Ifz_l (B.Eq, 3, "call");
        J.I (B.Move (4, 1));
        J.L "call";
        J.I (B.Invoke (B.Virtual, mref "tag", [ 4 ]));
        J.I (B.Move_result 5);
        J.I (B.Binop (B.Add, 2, 2, 5));
        J.I (B.Binop_lit (B.Sub, 7, 7, 1l));
        J.Goto_l "loop";
        J.L "done";
        J.I (B.Return 2) ]
  in
  let vm = fresh_vm [ base_m; drv ] in
  Vm.define_class vm (J.class_ ~name:sub ~super:cls [ sub_m ]);
  let v, _ = run vm "icdrv" [| tv (int32 10) |] in
  (* 5 odd iterations hit the override (100 each), 5 even the base (1) *)
  Alcotest.(check bool) "alternating receivers stay correct" true
    (Dvalue.equal v (int32 505))

let suite =
  suite
  @ [ Alcotest.test_case "overload arity dispatch" `Quick test_overload_arity;
      Alcotest.test_case "static pair key" `Quick test_static_pair_key;
      Alcotest.test_case "inline cache polymorphism" `Quick
        test_inline_cache_polymorphism ]
