(* The domain engine: three-way engine parity, the bounded warm layer,
   domain-safety of the shared service, the in-process worker pool, and
   single-flight coalescing in the daemon.

   This suite spawns domains, and OCaml 5 forbids [Unix.fork] once any
   domain has ever existed in the process — so this suite must register
   LAST in test_main, and the one test here that forks (the engine
   differential, via the forked pool engine) must run FIRST within it. *)

module Json = Ndroid_report.Json
module Verdict = Ndroid_report.Verdict
module Task = Ndroid_pipeline.Task
module Engine = Ndroid_pipeline.Engine
module Pool = Ndroid_pipeline.Pool
module Analysis = Ndroid_pipeline.Analysis
module Domain_pool = Ndroid_pipeline.Domain_pool
module Proto = Ndroid_pipeline.Proto
module Server = Ndroid_pipeline.Server
module Market = Ndroid_corpus.Market
module Registry = Ndroid_apps.Registry
module Stream = Ndroid_obs.Stream

let slice n = Task.of_market_slice (Market.scaled n)

let bundled_tasks mode =
  List.mapi
    (fun i name ->
      { Task.t_id = i; t_subject = Task.Bundled name; t_mode = mode;
        t_fault = None })
    Registry.names

let json_of reports =
  Json.to_string (Verdict.reports_to_json (Array.to_list reports))

let report_json r = Json.to_string (Verdict.report_to_json r)

(* ---- stream differential: both engines, identical event streams ----

   The fork half runs first (it forks a daemon, which is only legal before
   any domain exists); the domains half runs at the end of the suite and
   compares against the stream the fork half left here. *)

let stream_apps = [ "case1"; "case2"; "QQPhoneBook3.5" ]
let fork_streams : string list list option ref = ref None

(* one inline-traced submission per app, events as canonical JSON lines *)
let streams_of_daemon socket =
  let c =
    match Proto.Client.connect ~retry_for:10.0 socket with
    | Ok c ->
      Unix.setsockopt_float (Proto.Client.fd c) Unix.SO_RCVTIMEO 30.0;
      c
    | Error e -> Alcotest.failf "connect: %s" e
  in
  let one i name =
    Proto.Client.send c
      (Proto.Submit
         { sb_req = i; sb_subject = Task.Bundled name; sb_mode = Task.Hybrid;
           sb_deadline = None; sb_fault = None; sb_trace = true });
    let rec go acc =
      match Proto.Client.recv c with
      | Error e -> Alcotest.failf "recv: %s" e
      | Ok (Proto.Trace tc) ->
        go
          (acc
          @ List.map
              (fun ev -> Json.to_string (Stream.event_json ev))
              tc.Proto.tc_events)
      | Ok (Proto.Verdict _) -> acc
      | Ok (Proto.Progress _) -> go acc
      | Ok _ -> Alcotest.fail "unexpected message"
    in
    go []
  in
  let streams = List.mapi one stream_apps in
  Proto.Client.close c;
  streams

let test_stream_differential_fork_half () =
  let socket =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ndroid-test-stream-fork-%d.sock" (Unix.getpid ()))
  in
  match Unix.fork () with
  | 0 ->
    (try
       ignore
         (Server.serve
            (Server.config ~socket ~jobs:1 ~engine:Engine.Fork ()))
     with _ -> ());
    Unix._exit 0
  | pid ->
    Fun.protect
      ~finally:(fun () ->
        (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
        ignore (Unix.waitpid [] pid);
        try Unix.unlink socket with Unix.Unix_error _ -> ())
      (fun () ->
        let streams = streams_of_daemon socket in
        List.iter2
          (fun name s ->
            Alcotest.(check bool) (name ^ ": fork engine streamed") true
              (s <> []))
          stream_apps streams;
        fork_streams := Some streams)

(* ---- engine parity (forks: must stay the first test of this suite) ---- *)

let test_engine_differential () =
  let corpora =
    [ ("bundled both", bundled_tasks Task.Both);
      ("market 300 static", slice 300) ]
  in
  let inline = List.map (fun (_, ts) -> json_of (Pool.run_inline ts)) corpora in
  (* every forked run happens before the first domain spawn below *)
  let engine_run engine tasks =
    let reports, stats =
      Pool.run (Pool.config ~jobs:2 ~engine ()) tasks
    in
    Alcotest.(check string) "stats name the engine" (Engine.name engine)
      stats.Pool.s_engine;
    json_of reports
  in
  let forked = List.map (fun (_, ts) -> engine_run Engine.Fork ts) corpora in
  let domains =
    List.map (fun (_, ts) -> engine_run Engine.Domains ts) corpora
  in
  List.iteri
    (fun i (name, _) ->
      Alcotest.(check string) (name ^ ": fork == inline") (List.nth inline i)
        (List.nth forked i);
      Alcotest.(check string) (name ^ ": domains == inline")
        (List.nth inline i) (List.nth domains i))
    corpora

let test_engine_auto_resolution () =
  (* auto picks domains for clean work and fork for anything needing
     isolation; an explicit engine is obeyed *)
  Alcotest.(check string) "auto, clean" "domains"
    (Engine.name (Engine.resolve Engine.Auto ~needs_isolation:false));
  Alcotest.(check string) "auto, isolation" "fork"
    (Engine.name (Engine.resolve Engine.Auto ~needs_isolation:true));
  Alcotest.(check string) "forced domains" "domains"
    (Engine.name (Engine.resolve Engine.Domains ~needs_isolation:true));
  (match Engine.of_name "domains" with
   | Ok Engine.Domains -> ()
   | _ -> Alcotest.fail "of_name domains");
  match Engine.of_name "threads" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "of_name accepted garbage"

(* ---- the bounded warm layer ---- *)

let test_service_eviction () =
  let sv = Analysis.service ~capacity:4 () in
  let tasks = slice 10 in
  let first = List.map (fun t -> Analysis.service_run sv t) tasks in
  Alcotest.(check bool) "cap held" true
    (Analysis.service_warm_entries sv <= 4);
  Alcotest.(check bool) "evictions counted" true
    (Analysis.service_evictions sv > 0);
  (* an evicted entry recomputes to the identical report *)
  List.iteri
    (fun i t ->
      let r, _ = Analysis.service_run sv t in
      Alcotest.(check string)
        (Printf.sprintf "task %d identical after eviction" i)
        (report_json (fst (List.nth first i)))
        (report_json r))
    tasks

let test_service_second_chance () =
  (* a referenced entry survives one eviction scan: hammer one task while
     filling the table and it must stay warm *)
  let sv = Analysis.service ~capacity:4 () in
  let hot = List.hd (slice 1) in
  ignore (Analysis.service_run sv hot);
  List.iter
    (fun t ->
      ignore (Analysis.service_run sv hot);  (* keep the ref bit set *)
      ignore (Analysis.service_run sv t))
    (slice 6);
  let _, warm = Analysis.service_run sv hot in
  Alcotest.(check bool) "hot entry survived the churn" true warm

(* ---- domain-safety of the shared service ---- *)

let prop_service_hammer =
  QCheck.Test.make ~name:"one service, 4 hammering domains, no lost entries"
    ~count:8
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let tasks = Array.of_list (slice 16) in
      let reference =
        let sv = Analysis.service () in
        Array.map (fun t -> report_json (fst (Analysis.service_run sv t))) tasks
      in
      let sv = Analysis.service () in
      (* each domain runs its own seeded mix of the corpus, duplicates
         included, all against the one shared service *)
      let mix k =
        let state = ref (seed + (k * 7919) + 1) in
        List.init 40 (fun _ ->
            state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
            !state mod Array.length tasks)
      in
      let run_ids ids =
        List.map
          (fun i -> (i, report_json (fst (Analysis.service_run sv tasks.(i)))))
          ids
      in
      let workers =
        List.init 4 (fun k ->
            let ids = mix k in
            Domain.spawn (fun () -> run_ids ids))
      in
      let results = List.concat_map Domain.join workers in
      List.iter
        (fun (i, got) ->
          if not (String.equal reference.(i) got) then
            QCheck.Test.fail_reportf "task %d diverged under contention" i)
        results;
      (* nothing lost, nothing duplicated: exactly one warm entry per
         distinct digest ever requested *)
      let distinct =
        List.sort_uniq compare (List.map fst results) |> List.length
      in
      Alcotest.(check int) "one warm entry per distinct task" distinct
        (Analysis.service_warm_entries sv);
      Alcotest.(check int) "every request counted" (4 * 40)
        (Analysis.service_requests sv);
      true)

(* ---- the worker pool itself ---- *)

let test_domain_pool_roundtrip () =
  let tasks = slice 30 in
  let reference = Pool.run_inline tasks in
  let service = Analysis.service () in
  let pool = Domain_pool.create ~domains:2 ~service () in
  List.iter
    (fun (t : Task.t) -> Domain_pool.submit pool ~ticket:(1000 + t.Task.t_id) t)
    tasks;
  let got = Hashtbl.create 32 in
  while Hashtbl.length got < List.length tasks do
    List.iter
      (fun (c : Domain_pool.completion) ->
        Alcotest.(check bool) "ticket echoed once" false
          (Hashtbl.mem got c.Domain_pool.dc_ticket);
        Hashtbl.replace got c.Domain_pool.dc_ticket c.Domain_pool.dc_report)
      (Domain_pool.wait pool)
  done;
  Domain_pool.shutdown pool;
  List.iter
    (fun (t : Task.t) ->
      match Hashtbl.find_opt got (1000 + t.Task.t_id) with
      | None -> Alcotest.failf "task %d never completed" t.Task.t_id
      | Some r ->
        Alcotest.(check string) "report matches inline"
          (report_json reference.(t.Task.t_id))
          (report_json r))
    tasks;
  match Domain_pool.submit pool ~ticket:0 (List.hd tasks) with
  | () -> Alcotest.fail "submit after shutdown accepted"
  | exception Invalid_argument _ -> ()

(* ---- single-flight coalescing in the daemon ---- *)

let test_single_flight () =
  let socket =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ndroid-test-sf-%d.sock" (Unix.getpid ()))
  in
  let stop = Atomic.make false in
  let cfg =
    Server.config ~socket ~jobs:2 ~depth:64 ~max_clients:4
      ~engine:Engine.Domains
      ~stop:(fun () -> Atomic.get stop)
      ()
  in
  (* the daemon lives in a sibling domain of this test process; the stop
     hook shuts it down without signals *)
  let daemon = Domain.spawn (fun () -> Server.serve cfg) in
  let finish () =
    Atomic.set stop true;
    Domain.join daemon
  in
  match
    let c =
      match Proto.Client.connect ~retry_for:10.0 socket with
      | Ok c ->
        Unix.setsockopt_float (Proto.Client.fd c) Unix.SO_RCVTIMEO 30.0;
        c
      | Error e -> Alcotest.failf "connect: %s" e
    in
    let task = List.hd (bundled_tasks Task.Both) in
    let n = 8 in
    for req = 0 to n - 1 do
      Proto.Client.send c
        (Proto.Submit
           { sb_req = req; sb_subject = task.Task.t_subject;
             sb_mode = task.Task.t_mode; sb_deadline = None; sb_fault = None;
             sb_trace = false })
    done;
    let coalesced = ref 0 in
    let verdicts = ref [] in
    let rec collect remaining =
      if remaining > 0 then
        match Proto.Client.recv c with
        | Error e -> Alcotest.failf "recv: %s" e
        | Ok (Proto.Verdict v) ->
          verdicts := report_json v.vd_report :: !verdicts;
          collect (remaining - 1)
        | Ok (Proto.Progress p) ->
          if p.pg_state = "coalesced" then incr coalesced;
          collect remaining
        | Ok (Proto.Shed s) -> Alcotest.failf "shed: %s" s.sh_reason
        | Ok _ -> Alcotest.fail "unexpected message"
    in
    collect n;
    Proto.Client.close c;
    (n, !coalesced, !verdicts)
  with
  | exception e ->
    ignore (finish ());
    raise e
  | n, coalesced, verdicts ->
    let st = finish () in
    Alcotest.(check int) "every submit answered" n (List.length verdicts);
    (match verdicts with
     | [] -> Alcotest.fail "no verdicts"
     | v :: rest ->
       List.iter
         (Alcotest.(check string) "all waiters get the one verdict" v)
         rest);
    Alcotest.(check int) "exactly one analysis ran" 1 st.Server.sv_analyses;
    Alcotest.(check int) "herd deduplicated" (n - 1)
      (st.Server.sv_coalesced + st.Server.sv_cache_hits);
    Alcotest.(check bool) "some submits coalesced" true (coalesced > 0);
    Alcotest.(check int) "server agrees on coalesced count" coalesced
      st.Server.sv_coalesced;
    Alcotest.(check int) "all served" n st.Server.sv_served

let test_domains_daemon_sheds_isolation () =
  (* a domain-engine daemon cannot act a fault or enforce a deadline —
     such submits must shed with a reason, not be silently mis-served *)
  let socket =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ndroid-test-iso-%d.sock" (Unix.getpid ()))
  in
  let stop = Atomic.make false in
  let cfg =
    Server.config ~socket ~jobs:1 ~engine:Engine.Domains
      ~stop:(fun () -> Atomic.get stop)
      ()
  in
  let daemon = Domain.spawn (fun () -> Server.serve cfg) in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set stop true;
      ignore (Domain.join daemon))
    (fun () ->
      let c =
        match Proto.Client.connect ~retry_for:10.0 socket with
        | Ok c ->
          Unix.setsockopt_float (Proto.Client.fd c) Unix.SO_RCVTIMEO 30.0;
          c
        | Error e -> Alcotest.failf "connect: %s" e
      in
      let task = List.hd (slice 1) in
      Proto.Client.send c
        (Proto.Submit
           { sb_req = 0; sb_subject = task.Task.t_subject;
             sb_mode = task.Task.t_mode; sb_deadline = Some 0.5;
             sb_fault = None; sb_trace = false });
      (match Proto.Client.recv c with
       | Ok (Proto.Shed _) -> ()
       | _ -> Alcotest.fail "deadline-bearing submit must shed");
      (* a clean submit on the same connection still works *)
      Proto.Client.send c
        (Proto.Submit
           { sb_req = 1; sb_subject = task.Task.t_subject;
             sb_mode = task.Task.t_mode; sb_deadline = None; sb_fault = None;
             sb_trace = false });
      let rec wait_verdict () =
        match Proto.Client.recv c with
        | Ok (Proto.Verdict v) ->
          Alcotest.(check string) "clean submit served" "static"
            v.vd_report.Verdict.r_analysis
        | Ok (Proto.Progress _) -> wait_verdict ()
        | _ -> Alcotest.fail "clean submit must get a verdict"
      in
      wait_verdict ();
      Proto.Client.close c);
  match Server.config ~socket ~engine:Engine.Domains ~deadline:1.0 () with
  | _ -> Alcotest.fail "domains + default deadline must be rejected"
  | exception Invalid_argument _ -> ()

(* ---- streaming under the domain engine ---- *)

let with_domains_daemon ?(jobs = 1) ?stream_buf name f =
  let socket =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ndroid-test-%s-%d.sock" name (Unix.getpid ()))
  in
  let stop = Atomic.make false in
  let cfg =
    Server.config ~socket ~jobs ~engine:Engine.Domains ?stream_buf
      ~stop:(fun () -> Atomic.get stop)
      ()
  in
  let daemon = Domain.spawn (fun () -> Server.serve cfg) in
  match f socket with
  | exception e ->
    Atomic.set stop true;
    ignore (Domain.join daemon);
    raise e
  | v ->
    Atomic.set stop true;
    (Domain.join daemon, v)

let test_stream_differential_domains_half () =
  let reference =
    match !fork_streams with
    | Some s -> s
    | None -> Alcotest.fail "fork half of the differential did not run first"
  in
  let _, streams =
    with_domains_daemon "stream-dom" (fun socket -> streams_of_daemon socket)
  in
  List.iteri
    (fun i name ->
      Alcotest.(check (list string)) (name ^ ": domains stream == fork stream")
        (List.nth reference i) (List.nth streams i))
    stream_apps

let test_slow_subscriber_sheds_not_stalls () =
  (* a subscriber that never reads, behind a deliberately tiny outbound
     bound: every analysis still completes, verdicts stay bit-identical to
     the unsubscribed inline run, and the undeliverable trace frames are
     shed and counted — never queued without bound, never blocking *)
  let tasks =
    List.mapi
      (fun i name ->
        { Task.t_id = i; t_subject = Task.Bundled name; t_mode = Task.Hybrid;
          t_fault = None })
      stream_apps
  in
  let expected = List.map (fun r -> report_json r)
      (Array.to_list (Pool.run_inline tasks))
  in
  let st, got =
    with_domains_daemon ~stream_buf:256 "stream-slow" (fun socket ->
        let sub =
          match Proto.Client.connect ~retry_for:10.0 socket with
          | Ok c -> c
          | Error e -> Alcotest.failf "subscriber connect: %s" e
        in
        Proto.Client.send sub
          (Proto.Subscribe { su_cats = []; su_app = None; su_window = 0 });
        (* the subscriber never reads again; its frames cannot fit the
           256-byte bound and must be shed *)
        let c =
          match Proto.Client.connect ~retry_for:10.0 socket with
          | Ok c ->
            Unix.setsockopt_float (Proto.Client.fd c) Unix.SO_RCVTIMEO 30.0;
            c
          | Error e -> Alcotest.failf "connect: %s" e
        in
        List.iter
          (fun (t : Task.t) ->
            Proto.Client.send c
              (Proto.Submit
                 { sb_req = t.Task.t_id; sb_subject = t.Task.t_subject;
                   sb_mode = t.Task.t_mode; sb_deadline = None;
                   sb_fault = None; sb_trace = false }))
          tasks;
        let got = Array.make (List.length tasks) "" in
        let rec collect remaining =
          if remaining > 0 then
            match Proto.Client.recv c with
            | Error e -> Alcotest.failf "recv: %s" e
            | Ok (Proto.Verdict v) ->
              got.(v.vd_req) <- report_json v.vd_report;
              collect (remaining - 1)
            | Ok (Proto.Progress _) -> collect remaining
            | Ok (Proto.Shed s) -> Alcotest.failf "shed: %s" s.sh_reason
            | Ok _ -> Alcotest.fail "unexpected message"
        in
        collect (List.length tasks);
        Proto.Client.close c;
        Proto.Client.close sub;
        got)
  in
  List.iteri
    (fun i e ->
      Alcotest.(check string)
        (Printf.sprintf "verdict %d bit-identical despite the subscriber" i)
        e got.(i))
    expected;
  Alcotest.(check bool) "the engines streamed events" true
    (st.Server.sv_trace_events > 0);
  Alcotest.(check bool) "undeliverable frames shed and counted" true
    (st.Server.sv_trace_lost > 0);
  Alcotest.(check int) "one subscriber" 1 st.Server.sv_subscribers

let suite =
  [ Alcotest.test_case "daemon: fork engine streams (differential, half 1)"
      `Quick test_stream_differential_fork_half;
    Alcotest.test_case
      "engines: inline == fork == domains (bundled + market)" `Quick
      test_engine_differential;
    Alcotest.test_case "engines: auto resolves on isolation needs" `Quick
      test_engine_auto_resolution;
    Alcotest.test_case "service: capacity bound evicts, recomputes identically"
      `Quick test_service_eviction;
    Alcotest.test_case "service: second chance keeps hot entries" `Quick
      test_service_second_chance;
    QCheck_alcotest.to_alcotest prop_service_hammer;
    Alcotest.test_case "domain pool: tickets echo, reports match inline"
      `Quick test_domain_pool_roundtrip;
    Alcotest.test_case "daemon: single-flight coalesces a herd" `Quick
      test_single_flight;
    Alcotest.test_case "daemon: domains engine sheds isolation needs" `Quick
      test_domains_daemon_sheds_isolation;
    Alcotest.test_case
      "daemon: both engines stream identical events (differential, half 2)"
      `Quick test_stream_differential_domains_half;
    Alcotest.test_case "daemon: slow subscriber sheds, never stalls" `Quick
      test_slow_subscriber_sheds_not_stalls ]
