(* Argument definitions and request parsing shared by the ndroid
   subcommands.  analyze, serve and submit must agree on what an app
   request looks like — one spelling of the mode flags, the corpus
   selection and the task-list construction lives here so they cannot
   drift. *)

module Task = Ndroid_pipeline.Task
module Engine = Ndroid_pipeline.Engine
module Market = Ndroid_corpus.Market
module Registry = Ndroid_apps.Registry

let find_app name =
  match Registry.find name with
  | Some app -> Ok app
  | None ->
    Error
      (Printf.sprintf "unknown app %S; try one of: %s" name
         (String.concat ", " Registry.names))

(* The one way a corpus request becomes a dense-id task list: explicit
   bundled apps (default: all of them) or a --market slice, never both. *)
let tasks_of_request names market mode =
  match (market, names) with
  | Some _, _ :: _ -> Error "--market and explicit APP names are exclusive"
  | Some total, [] -> Ok (Task.of_market_slice ~mode (Market.scaled total))
  | None, names ->
    let names = match names with [] -> Registry.names | ns -> ns in
    let rec build i acc = function
      | [] -> Ok (List.rev acc)
      | name :: rest -> (
        match find_app name with
        | Error e -> Error e
        | Ok _ ->
          build (i + 1)
            ({ Task.t_id = i; t_subject = Task.Bundled name; t_mode = mode;
               t_fault = None }
             :: acc)
            rest)
    in
    build 0 [] names

let write_file path data =
  let oc = open_out_bin path in
  output_string oc data;
  close_out oc

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let data = really_input_string ic n in
  close_in ic;
  data

open Cmdliner

let apps_pos =
  Arg.(value & pos_all string []
       & info [] ~docv:"APP"
           ~doc:"Apps to analyze (default: every bundled app).")

let json_flag =
  Arg.(value & flag
       & info [ "json" ]
           ~doc:"Emit one canonical JSON array of per-app reports on stdout.")

let mode_flags =
  Arg.(value
       & vflag Task.Static
           [ (Task.Static,
              info [ "static" ]
                ~doc:"Artifact-level analysis over the JNI supergraph \
                      (default).");
             (Task.Dynamic,
              info [ "dynamic" ]
                ~doc:"Run the app under the emulated NDroid tracker.");
             (Task.Both,
              info [ "both" ]
                ~doc:"Run both analyzers and merge their flows.");
             (Task.Hybrid,
              info [ "hybrid" ]
                ~doc:"Static triage first: clean apps finish with no \
                      emulation; flagged apps get a dynamic run focused \
                      on the static slice.") ])

let jobs_arg ~default ~doc =
  Arg.(value & opt int default & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let timeout_arg =
  Arg.(value & opt (some float) None
       & info [ "timeout" ] ~docv:"SEC"
           ~doc:"Per-app wall-clock budget; an app overrunning it records \
                 a timeout verdict instead of wedging the sweep.")

let cache_arg =
  Arg.(value & opt (some string) None
       & info [ "cache" ] ~docv:"DIR"
           ~doc:"On-disk result cache keyed by app digest and analyzer \
                 version.")

let market_arg =
  Arg.(value & opt (some int) None
       & info [ "market" ] ~docv:"N"
           ~doc:"Instead of bundled apps, sweep an $(docv)-app market \
                 slice.")

let socket_pos =
  Arg.(required & pos 0 (some string) None
       & info [] ~docv:"SOCKET" ~doc:"Unix-domain socket path of the daemon.")

(* submit's app list: every positional after the socket *)
let apps_after_socket =
  Arg.(value & pos_right 0 string []
       & info [] ~docv:"APP"
           ~doc:"Apps to analyze (default: every bundled app).")

let deadline_arg ~doc =
  Arg.(value & opt (some float) None & info [ "deadline" ] ~docv:"SEC" ~doc)

let engine_conv =
  let parse s = Result.map_error (fun e -> `Msg e) (Engine.of_name s) in
  let print fmt e = Format.pp_print_string fmt (Engine.name e) in
  Arg.conv (parse, print)

let engine_arg =
  Arg.(value & opt engine_conv Engine.Auto
       & info [ "engine" ] ~docv:"ENGINE"
           ~doc:"Worker engine for cache misses: $(b,fork) (process \
                 isolation: crash containment, timeouts, fault \
                 injection), $(b,domains) (shared-memory OCaml domains: \
                 no fork or serialization tax per task), or $(b,auto) \
                 (default; domains unless the run needs isolation).")
