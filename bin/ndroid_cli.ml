(* The ndroid command-line tool: run scenario apps under any analysis
   configuration, print detection matrices, run the market study, and drive
   apps with random input.

     ndroid list
     ndroid run QQPhoneBook3.5 --mode ndroid --log
     ndroid matrix
     ndroid study --total 50000
     ndroid monkey --seeds 30 --events 80
*)

module H = Ndroid_apps.Harness
module M = Ndroid_apps.Monkey
module A = Ndroid_android
module Market = Ndroid_corpus.Market
module Stats = Ndroid_corpus.Stats
module Registry = Ndroid_apps.Registry
module Task = Ndroid_pipeline.Task
module Engine = Ndroid_pipeline.Engine
module Pool = Ndroid_pipeline.Pool
module Cache = Ndroid_pipeline.Cache
module Server = Ndroid_pipeline.Server
module Proto = Ndroid_pipeline.Proto
module Json = Ndroid_report.Json
module Verdict = Ndroid_report.Verdict
module Ring = Ndroid_obs.Ring
module Export = Ndroid_obs.Export
module Stream = Ndroid_obs.Stream
module Event = Ndroid_obs.Event

let registry : H.app list = Registry.all
let find_app = Cli_args.find_app
let write_file = Cli_args.write_file
let read_file = Cli_args.read_file

let mode_of_string = function
  | "vanilla" -> Ok H.Vanilla
  | "taintdroid" -> Ok H.Taintdroid_only
  | "droidscope" -> Ok H.Droidscope_mode
  | "ndroid" -> Ok H.Ndroid_full
  | s -> Error (Printf.sprintf "unknown mode %S" s)

(* ---- commands ---- *)

let cmd_list () =
  List.iter
    (fun a -> Printf.printf "%-22s [%s] %s\n" a.H.app_name a.H.app_case a.H.description)
    registry;
  0

let run_with_policy mode block app =
  if not block then H.run mode app
  else begin
    (* boot manually so the Block policy is set before the app runs *)
    let device = H.boot app in
    let nd =
      match mode with
      | H.Ndroid_full -> Some (Ndroid_core.Ndroid.attach device)
      | H.Vanilla ->
        Ndroid_taintdroid.Taintdroid.vanilla device;
        None
      | H.Taintdroid_only ->
        ignore (Ndroid_taintdroid.Taintdroid.attach device);
        None
      | H.Droidscope_mode ->
        ignore (Ndroid_core.Droidscope.attach device);
        None
    in
    A.Sink_monitor.set_policy
      (Ndroid_runtime.Device.monitor device)
      A.Sink_monitor.Block;
    (try
       ignore
         (Ndroid_runtime.Device.run device (fst app.H.entry) (snd app.H.entry) [||])
     with Ndroid_dalvik.Vm.Java_throw _ -> ());
    let leaks = A.Sink_monitor.leaks (Ndroid_runtime.Device.monitor device) in
    { H.mode;
      detected = leaks <> [];
      leaks;
      flow_log =
        (match nd with
         | Some n -> Ndroid_core.Flow_log.entries (Ndroid_core.Ndroid.log n)
         | None -> []);
      stats = (match nd with Some n -> Some (Ndroid_core.Ndroid.stats n) | None -> None);
      transmissions =
        A.Network.transmissions (Ndroid_runtime.Device.net device);
      file_writes = A.Filesystem.writes (Ndroid_runtime.Device.fs device);
      device;
      analysis = nd }
  end

let cmd_run name mode_s show_log report block =
  match (find_app name, mode_of_string mode_s) with
  | Error e, _ | _, Error e ->
    prerr_endline e;
    1
  | Ok app, Ok mode when report -> (
    let o = run_with_policy mode block app in
    match o.H.analysis with
    | Some nd ->
      Ndroid_core.Report.print ~app_name:app.H.app_name
        ~transmissions:o.H.transmissions ~file_writes:o.H.file_writes nd;
      0
    | None ->
      prerr_endline "--report needs --mode ndroid";
      1)
  | Ok app, Ok mode ->
    let o = run_with_policy mode block app in
    Printf.printf "app:      %s [%s]\n" app.H.app_name app.H.app_case;
    Printf.printf "analysis: %s\n" (H.mode_name mode);
    Printf.printf "detected: %b\n" o.H.detected;
    List.iter
      (fun l -> Format.printf "leak: %a@." A.Sink_monitor.pp_leak l)
      o.H.leaks;
    List.iter
      (fun t ->
        Printf.printf "traffic to %s (%d bytes)\n" t.A.Network.dest
          (String.length t.A.Network.payload))
      o.H.transmissions;
    List.iter
      (fun w -> Printf.printf "file write: %s\n" w.A.Filesystem.w_path)
      o.H.file_writes;
    (match o.H.stats with
     | Some s -> Format.printf "stats: %a@." Ndroid_core.Ndroid.pp_stats s
     | None -> ());
    if show_log && o.H.flow_log <> [] then begin
      print_endline "--- flow log ---";
      List.iter print_endline o.H.flow_log
    end;
    0

let cmd_matrix () =
  Printf.printf "%-22s %-9s %-11s %-11s %s\n" "app" "vanilla" "TaintDroid"
    "DroidScope" "NDroid";
  List.iter
    (fun app ->
      let d mode = if (H.run mode app).H.detected then "detect" else "miss" in
      Printf.printf "%-22s %-9s %-11s %-11s %s\n%!" app.H.app_name (d H.Vanilla)
        (d H.Taintdroid_only) (d H.Droidscope_mode) (d H.Ndroid_full))
    registry;
  0

let cmd_study total =
  let params =
    match total with Some n -> Market.scaled n | None -> Market.default_params
  in
  let s = Stats.summarize (Market.generate params) in
  Format.printf "%a@.%a@." Stats.pp_summary s Stats.pp_fig2 s;
  0

let cmd_disasm name =
  match find_app name with
  | Error e ->
    prerr_endline e;
    1
  | Ok app ->
    let device = Ndroid_runtime.Device.create () in
    Ndroid_runtime.Device.install_classes device app.H.classes;
    let extern n =
      match
        Ndroid_runtime.Device.Machine.host_fn_addr
          (Ndroid_runtime.Device.machine device) n
      with
      | a -> Some a
      | exception Not_found -> None
    in
    List.iter
      (fun (lib_name, prog) ->
        Printf.printf "library %s (%s, %d bytes at 0x%x):\n" lib_name
          (match Ndroid_arm.Asm.mode prog with
           | Ndroid_arm.Cpu.Arm -> "ARM"
           | Ndroid_arm.Cpu.Thumb -> "Thumb")
          (Ndroid_arm.Asm.size prog) (Ndroid_arm.Asm.base prog);
        Format.printf "%a@." Ndroid_arm.Disasm.pp_listing
          (Ndroid_arm.Disasm.program prog))
      (app.H.build_libs extern);
    0

let cmd_scan total =
  let params = Market.scaled total in
  Printf.printf "materializing and scanning %d APKs at the artifact level...\n%!"
    params.Market.total;
  let module Apk = Ndroid_corpus.Apk in
  let module Classifier = Ndroid_corpus.Classifier in
  let counts = Hashtbl.create 8 in
  Seq.iter
    (fun app ->
      let verdict = Apk.classify (Apk.of_app_model app) in
      let key = Classifier.classification_name verdict in
      Hashtbl.replace counts key
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts key)))
    (Market.generate params);
  Hashtbl.iter (fun k v -> Printf.printf "  %-20s %d\n" k v) counts;
  0

let cmd_pack name dir =
  match find_app name with
  | Error e ->
    prerr_endline e;
    1
  | Ok app ->
    let device = Ndroid_runtime.Device.create () in
    Ndroid_runtime.Device.install_classes device app.H.classes;
    let extern n =
      match
        Ndroid_runtime.Device.Machine.host_fn_addr
          (Ndroid_runtime.Device.machine device) n
      with
      | a -> Some a
      | exception Not_found -> None
    in
    (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    let dex_path = Filename.concat dir "classes.dex" in
    write_file dex_path (Ndroid_dalvik.Dexfile.to_string app.H.classes);
    Printf.printf "wrote %s\n" dex_path;
    List.iter
      (fun (lib_name, prog) ->
        let so_path = Filename.concat dir ("lib" ^ lib_name ^ ".so") in
        write_file so_path (Ndroid_arm.Sofile.to_string prog);
        Printf.printf "wrote %s\n" so_path)
      (app.H.build_libs extern);
    0

let cmd_classify dir =
  match Sys.readdir dir with
  | exception Sys_error e ->
    prerr_endline e;
    1
  | names ->
    let entries =
      Array.to_list names
      |> List.filter_map (fun n ->
             let path = Filename.concat dir n in
             if Sys.is_directory path then None
             else
               let key =
                 if Filename.check_suffix n ".so" then "lib/armeabi/" ^ n else n
               in
               Some (key, read_file path))
    in
    let apk = { Ndroid_corpus.Apk.apk_package = dir; entries } in
    (match Ndroid_corpus.Apk.classify apk with
     | verdict ->
       Printf.printf "%s: %s\n" dir
         (Ndroid_corpus.Classifier.classification_name verdict);
       List.iter
         (fun (p, data) -> Printf.printf "  %-28s %6d bytes\n" p (String.length data))
         entries;
       0
     | exception Ndroid_dalvik.Dexfile.Bad_dex m ->
       Printf.printf "corrupt dex: %s\n" m;
       1)

let cmd_dump name =
  match find_app name with
  | Error e ->
    prerr_endline e;
    1
  | Ok app ->
    Format.printf "%a" Ndroid_dalvik.Dexdump.pp_classes app.H.classes;
    let natives = Ndroid_dalvik.Dexdump.native_methods app.H.classes in
    Printf.printf "native method declarations (%d):\n" (List.length natives);
    List.iter
      (fun (c, m, sym) -> Printf.printf "  %s->%s  ->  %s\n" c m sym)
      natives;
    0

(* ---- the unified analyze entry point -------------------------------- *)

(* Per-phase stats for the sweep, including Dalvik throughput (bytecodes/sec
   over the measured analysis time) and JNI-crossing counts.  Emitted on
   stderr so stdout stays exactly the canonical report array. *)
let stats_to_json ~bytecodes ~jni_crossings ~focused_methods
    ~skipped_bytecodes ~analyze_seconds phases =
  let rate =
    if analyze_seconds > 0.0 then float_of_int bytecodes /. analyze_seconds
    else 0.0
  in
  Json.Obj
    (phases
     @ [ ("analyze_seconds", Json.Float analyze_seconds);
         ("bytecodes", Json.Int bytecodes);
         ("bytecodes_per_sec", Json.Float rate);
         ("jni_crossings", Json.Int jni_crossings);
         ("focused_methods", Json.Int focused_methods);
         ("skipped_bytecodes", Json.Int skipped_bytecodes) ])

let cmd_analyze names mode json jobs timeout cache_dir market engine
    trace_file =
  match Cli_args.tasks_of_request names market mode with
  | Error e ->
    prerr_endline e;
    1
  | Ok tasks ->
    let cache = Option.map (fun dir -> Cache.create ~dir) cache_dir in
    (* the trace ring lives in this process; worker forks could not share
       it, so --trace always takes the in-process path *)
    let obs =
      Option.map (fun _ -> Ring.create ~capacity:262144 ~tracing:true ())
        trace_file
    in
    if obs <> None && (jobs > 1 || timeout <> None) then
      prerr_endline
        "note: --trace records in-process; ignoring --jobs/--timeout";
    let reports, stats_json =
      if
        obs <> None
        || (engine = Engine.Auto && jobs <= 1 && timeout = None)
      then begin
        let progress ~done_ ~total = Printf.eprintf "\r%d/%d%!" done_ total in
        let progress = if json then None else Some progress in
        let t0 = Unix.gettimeofday () in
        let reports = Pool.run_inline ?cache ?obs ?progress tasks in
        if progress <> None then Printf.eprintf "\n%!";
        let seconds = Unix.gettimeofday () -. t0 in
        let bytecodes, jni_crossings, focused_methods, skipped_bytecodes =
          Pool.counters_of_reports reports
        in
        let metrics =
          match obs with
          | Some ring ->
            [ ("metrics", Ndroid_obs.Metrics.to_json (Ring.metrics ring)) ]
          | None -> []
        in
        ( reports,
          stats_to_json ~bytecodes ~jni_crossings ~focused_methods
            ~skipped_bytecodes ~analyze_seconds:seconds
            (("wall_seconds", Json.Float seconds) :: metrics) )
      end
      else begin
        let progress ~done_ ~total = Printf.eprintf "\r%d/%d%!" done_ total in
        let progress = if json then None else Some progress in
        let reports, s =
          Pool.run
            (Pool.config ~jobs ?timeout ?cache ?progress ~engine ())
            tasks
        in
        if progress <> None then Printf.eprintf "\n%!";
        ( reports,
          stats_to_json ~bytecodes:s.Pool.s_bytecodes
            ~jni_crossings:s.Pool.s_jni_crossings
            ~focused_methods:s.Pool.s_focused_methods
            ~skipped_bytecodes:s.Pool.s_skipped_bytecodes
            ~analyze_seconds:s.Pool.s_analyze_cpu
            [ ("wall_seconds", Json.Float s.Pool.s_wall);
              ("engine", Json.Str s.Pool.s_engine);
              ("cache_pass_seconds", Json.Float s.Pool.s_cache_pass);
              ("digest_seconds", Json.Float s.Pool.s_digest);
              ("fork_seconds", Json.Float s.Pool.s_fork);
              ("wire_seconds", Json.Float s.Pool.s_wire);
              ("collect_seconds", Json.Float s.Pool.s_collect);
              ("cache_hits", Json.Int s.Pool.s_cache_hits);
              ("from_workers", Json.Int s.Pool.s_from_workers);
              ("evictions", Json.Int s.Pool.s_evictions);
              ("metrics", s.Pool.s_metrics) ] )
      end
    in
    (match (obs, trace_file) with
     | Some ring, Some file ->
       let data =
         if Filename.check_suffix file ".jsonl" then
           Export.to_jsonl_string ring
         else Export.to_chrome_string ring
       in
       write_file file data;
       Printf.eprintf "trace: %d events recorded (%d kept) -> %s\n%!"
         (Ring.total ring)
         (min (Ring.total ring) (Ring.capacity ring))
         file
     | _ -> ());
    let reports = Array.to_list reports in
    if json then begin
      print_endline (Json.to_string (Verdict.reports_to_json reports));
      Printf.eprintf "%s\n%!"
        (Json.to_string (Json.Obj [ ("stats", stats_json) ]))
    end
    else begin
      List.iter (fun r -> Format.printf "%a@." Verdict.pp_report r) reports;
      match stats_json with
      | Json.Obj fields ->
        let str k =
          match List.assoc_opt k fields with
          | Some (Json.Float f) -> Printf.sprintf "%.2f" f
          | Some (Json.Int n) -> string_of_int n
          | _ -> "0"
        in
        Printf.printf
          "stats: %s bytecodes in %ss (%s bytecodes/sec), %s JNI crossings\n"
          (str "bytecodes") (str "analyze_seconds") (str "bytecodes_per_sec")
          (str "jni_crossings")
      | _ -> ()
    end;
    if List.exists (fun r -> Verdict.flagged r.Verdict.r_verdict) reports then 3
    else 0

(* ---- the service: serve and submit ----------------------------------- *)

let cmd_serve socket jobs cache_dir depth max_clients deadline engine quiet
    stream_buf =
  let cache = Option.map (fun dir -> Cache.create ~dir) cache_dir in
  let log =
    if quiet then None
    else Some (fun s -> Printf.eprintf "ndroid serve: %s\n%!" s)
  in
  match
    Server.config ~socket ~jobs ?cache ~depth ~max_clients ?deadline ~engine
      ~stream_buf ?log ()
  with
  | exception Invalid_argument e ->
    prerr_endline e;
    1
  | cfg ->
    let st = Server.serve cfg in
    Printf.eprintf
      "ndroid serve: %d requests, %d served (%d cached, %d coalesced), %d \
       analyses, %d shed, %d crashed, %d timeouts, %d respawns, %d \
       evictions, %d clients, %d subscribers, %d trace events (%d \
       throttled, %d lost)\n%!"
      st.Server.sv_requests st.Server.sv_served st.Server.sv_cache_hits
      st.Server.sv_coalesced st.Server.sv_analyses st.Server.sv_shed
      st.Server.sv_crashed st.Server.sv_timeouts st.Server.sv_respawns
      st.Server.sv_evictions st.Server.sv_clients st.Server.sv_subscribers
      st.Server.sv_trace_events st.Server.sv_trace_dropped
      st.Server.sv_trace_lost;
    0

(* One human-readable line per streamed event: the Fig. 6-9 rendering when
   the kind has one, the raw name otherwise. *)
let event_line ~app (ev : Stream.event) =
  let text =
    match Stream.render ev with Some s -> s | None -> ev.Stream.ev_name
  in
  Printf.sprintf "%-18s %8d  %-14s %s" app ev.Stream.ev_seq
    (Event.kind_name ev.Stream.ev_kind) text

(* Submit pipelined: send every request up front, then collect terminal
   responses until each request has one.  Output is exactly what
   `ndroid analyze` prints for the same corpus — the service is the same
   code path, so the bytes match. *)
let cmd_submit socket names market mode json deadline trace_follow =
  match Cli_args.tasks_of_request names market mode with
  | Error e ->
    prerr_endline e;
    1
  | Ok tasks -> (
    match Proto.Client.connect ~retry_for:5.0 socket with
    | Error e ->
      prerr_endline e;
      1
    | Ok client ->
      let task_arr = Array.of_list tasks in
      let total = Array.length task_arr in
      let reports : Verdict.report option array = Array.make total None in
      Array.iter
        (fun t ->
          Proto.Client.send client
            (Proto.Submit
               { sb_req = t.Task.t_id; sb_subject = t.Task.t_subject;
                 sb_mode = t.Task.t_mode; sb_deadline = deadline;
                 sb_fault = t.Task.t_fault; sb_trace = trace_follow }))
        task_arr;
      let remaining = ref total in
      let failed = ref None in
      while !remaining > 0 && !failed = None do
        match Proto.Client.recv client with
        | Stdlib.Error e -> failed := Some e
        | Ok (Proto.Verdict v) when v.vd_req >= 0 && v.vd_req < total ->
          reports.(v.vd_req) <- Some v.vd_report;
          decr remaining
        | Ok (Proto.Shed s) when s.sh_req >= 0 && s.sh_req < total ->
          (* a shed request still gets a report row, marked as such, so
             the output array keeps one entry per app *)
          let t = task_arr.(s.sh_req) in
          Printf.eprintf "request %d shed: %s\n%!" s.sh_req s.sh_reason;
          reports.(s.sh_req) <-
            Some
              { Verdict.r_app = Task.subject_name t.Task.t_subject;
                r_analysis = Task.mode_name t.Task.t_mode;
                r_verdict = Verdict.Crashed ("shed: " ^ s.sh_reason);
                r_meta = [] };
          decr remaining
        | Ok (Proto.Progress { pg_req; pg_state; pg_depth }) ->
          (* the daemon narrates admission (queued at depth N, coalesced
             onto an in-flight digest); stdout stays exactly the report
             array, so the narration goes to stderr *)
          if not json then
            Printf.eprintf "request %d %s (queue depth %d)\n%!" pg_req
              pg_state pg_depth
        | Ok (Proto.Trace tc) ->
          if trace_follow then
            List.iter
              (fun ev ->
                Printf.eprintf "%s\n" (event_line ~app:tc.Proto.tc_app ev))
              tc.Proto.tc_events;
          if trace_follow && tc.Proto.tc_events <> [] then flush stderr
        | Ok (Proto.Error e) -> failed := Some e
        | Ok _ -> ()
      done;
      Proto.Client.close client;
      (match !failed with
       | Some e ->
         prerr_endline e;
         1
       | None ->
         let reports =
           Array.to_list reports
           |> List.filter_map (fun r -> r)
         in
         if json then
           print_endline (Json.to_string (Verdict.reports_to_json reports))
         else
           List.iter (fun r -> Format.printf "%a@." Verdict.pp_report r)
             reports;
         if List.exists (fun r -> Verdict.flagged r.Verdict.r_verdict) reports
         then 3
         else 0))

(* ---- trace inspection ------------------------------------------------ *)

(* One row per event, whichever exporter wrote the file.  Chrome events
   carry ph/ts/tid/cat, JSONL events carry seq/kind; both carry a name. *)
let trace_row j =
  let s k = Option.bind (Json.member k j) Json.str in
  let i k = Option.bind (Json.member k j) Json.int in
  match (i "ts", s "ph") with
  | Some ts, Some ph ->
    Printf.sprintf "%8d  %s  tid %d  %-10s %s" ts ph
      (Option.value ~default:0 (i "tid"))
      (Option.value ~default:"-" (s "cat"))
      (Option.value ~default:"" (s "name"))
  | _ ->
    Printf.sprintf "%8d  %-14s %s"
      (Option.value ~default:0 (i "seq"))
      (Option.value ~default:"-" (s "kind"))
      (Option.value ~default:"" (s "name"))

let trace_category j =
  match Option.bind (Json.member "cat" j) Json.str with
  | Some c -> Some c
  | None -> Option.bind (Json.member "kind" j) Json.str

(* Live subscriber: attach to a running daemon, send one Subscribe frame,
   and print every surviving event until the daemon exits (or Ctrl-C).
   --jsonl lines go through the one shared codec, so they are byte-identical
   to what `ndroid analyze --trace out.jsonl` writes for the same events. *)
let cmd_trace_follow socket cat app throttle_ms jsonl =
  match Proto.Client.connect ~retry_for:5.0 socket with
  | Error e ->
    prerr_endline e;
    1
  | Ok client ->
    Proto.Client.send client
      (Proto.Subscribe
         { su_cats = (match cat with Some c -> [ c ] | None -> []);
           su_app = app;
           (* the ring's seq clock ticks once per event; the wire window is
              in seq units, nominally one event per microsecond *)
           su_window = throttle_ms * 1000 });
    let events = ref 0 and dropped = ref 0 and lost = ref 0 in
    let failed = ref None in
    let eof = ref false in
    while !failed = None && not !eof do
      match Proto.Client.recv client with
      | Stdlib.Error e ->
        (* daemon shutdown is the normal way a follow ends *)
        if e = "server closed the connection" then eof := true
        else failed := Some e
      | Ok (Proto.Trace tc) ->
        List.iter
          (fun ev ->
            incr events;
            if jsonl then
              print_endline (Json.to_string (Stream.event_json ev))
            else print_endline (event_line ~app:tc.Proto.tc_app ev))
          tc.Proto.tc_events;
        if tc.Proto.tc_events <> [] then flush stdout;
        (* broadcast frames carry cumulative counters; keep the latest *)
        dropped := tc.Proto.tc_dropped;
        lost := tc.Proto.tc_lost
      | Ok (Proto.Error e) -> failed := Some e
      | Ok _ -> ()
    done;
    Proto.Client.close client;
    (match !failed with
     | Some e ->
       prerr_endline e;
       1
     | None ->
       Printf.eprintf "%d events, %d throttled, %d lost\n%!" !events !dropped
         !lost;
       0)

let cmd_trace file cat limit =
  match read_file file with
  | exception Sys_error e ->
    prerr_endline e;
    1
  | data -> (
    let parsed =
      if Filename.check_suffix file ".jsonl" then
        String.split_on_char '\n' data
        |> List.filter (fun l -> String.trim l <> "")
        |> List.fold_left
             (fun acc line ->
               match (acc, Json.of_string line) with
               | Error _, _ -> acc
               | Ok evs, Ok j -> Ok (j :: evs)
               | Ok _, Error e -> Error e)
             (Ok [])
        |> Result.map List.rev
      else
        match Json.of_string data with
        | Error e -> Error e
        | Ok doc -> (
          match Option.bind (Json.member "traceEvents" doc) Json.list with
          | Some evs -> Ok evs
          | None -> Error "no traceEvents array (not a Chrome trace?)")
    in
    match parsed with
    | Error e ->
      Printf.eprintf "%s: %s\n" file e;
      1
    | Ok events ->
      let wanted =
        match cat with
        | None -> events
        | Some c -> List.filter (fun j -> trace_category j = Some c) events
      in
      let total = List.length wanted in
      let shown = match limit with Some n -> min n total | None -> total in
      List.iteri
        (fun i j -> if i < shown then print_endline (trace_row j))
        wanted;
      if shown < total then
        Printf.printf "... (%d of %d events; raise --limit)\n" shown total;
      Printf.eprintf "%d events%s in %s\n%!" total
        (match cat with Some c -> " in category " ^ c | None -> "")
        file;
      0)

let cmd_monkey seeds events =
  let found =
    M.discovery_rate ~seeds ~events ~mode:H.Ndroid_full M.gated_app
  in
  Printf.printf "random input:   %d/%d seeds triggered the gated leak (%d events each)\n"
    found seeds events;
  let r = M.drive_script ~script:M.gated_script ~mode:H.Ndroid_full M.gated_app in
  Printf.printf "directed input: %s -> leak %b\n"
    (String.concat " -> " M.gated_script)
    r.M.leaked;
  0

(* ---- cmdliner wiring ---- *)

open Cmdliner

let mode_arg =
  Arg.(value & opt string "ndroid"
       & info [ "mode" ] ~docv:"MODE"
           ~doc:"Analysis configuration: vanilla, taintdroid, droidscope or ndroid.")

let list_cmd =
  Cmd.v (Cmd.info "list" ~doc:"List the bundled scenario and case-study apps.")
    Term.(const cmd_list $ const ())

let run_cmd =
  let app_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"APP")
  in
  let log_arg =
    Arg.(value & flag & info [ "log" ] ~doc:"Print NDroid's flow log.")
  in
  let report_arg =
    Arg.(value & flag
         & info [ "report" ] ~doc:"Print a full triage report (ndroid mode).")
  in
  let block_arg =
    Arg.(value & flag
         & info [ "block" ]
             ~doc:"Enforce: suppress or scrub tainted data at sinks.")
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run one app under an analysis configuration.")
    Term.(const cmd_run $ app_arg $ mode_arg $ log_arg $ report_arg $ block_arg)

let matrix_cmd =
  Cmd.v
    (Cmd.info "matrix"
       ~doc:"Print the Table I detection matrix over every bundled app.")
    Term.(const cmd_matrix $ const ())

let study_cmd =
  let total_arg =
    Arg.(value & opt (some int) None
         & info [ "total" ] ~docv:"N"
             ~doc:"Corpus size (default: the paper's 227,911).")
  in
  Cmd.v (Cmd.info "study" ~doc:"Run the Sec. III market study.")
    Term.(const cmd_study $ total_arg)

let monkey_cmd =
  let seeds = Arg.(value & opt int 20 & info [ "seeds" ] ~docv:"N") in
  let events = Arg.(value & opt int 60 & info [ "events" ] ~docv:"N") in
  Cmd.v
    (Cmd.info "monkey"
       ~doc:"Drive the gated demo app with random vs. directed input (Sec. VI).")
    Term.(const cmd_monkey $ seeds $ events)

let disasm_cmd =
  let app_arg = Arg.(required & pos 0 (some string) None & info [] ~docv:"APP") in
  Cmd.v
    (Cmd.info "disasm" ~doc:"Disassemble an app's native libraries.")
    Term.(const cmd_disasm $ app_arg)

let pack_cmd =
  let app_arg = Arg.(required & pos 0 (some string) None & info [] ~docv:"APP") in
  let dir_arg = Arg.(required & pos 1 (some string) None & info [] ~docv:"DIR") in
  Cmd.v
    (Cmd.info "pack"
       ~doc:"Write an app's classes.dex and lib*.so artifacts to a directory.")
    Term.(const cmd_pack $ app_arg $ dir_arg)

let classify_cmd =
  let dir_arg = Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR") in
  Cmd.v
    (Cmd.info "classify"
       ~doc:"Classify a packed app directory by parsing its artifacts.")
    Term.(const cmd_classify $ dir_arg)

let scan_cmd =
  let total = Arg.(value & opt int 2000 & info [ "total" ] ~docv:"N") in
  Cmd.v
    (Cmd.info "scan"
       ~doc:"Materialize a market slice into binary APK artifacts and \
             classify by parsing them.")
    Term.(const cmd_scan $ total)

let analyze_cmd =
  let trace_arg =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:"Record an execution trace of the sweep: Chrome \
                   trace_event JSON (open in chrome://tracing or Perfetto), \
                   or raw line-delimited events if $(docv) ends in .jsonl.  \
                   Forces in-process execution.")
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Analyze apps through the unified pipeline: static supergraph, \
             dynamic NDroid run, or both, optionally sharded over worker \
             processes with per-app timeouts and crash isolation.  Exits 3 \
             if any app is flagged.")
    Term.(const cmd_analyze $ Cli_args.apps_pos $ Cli_args.mode_flags
          $ Cli_args.json_flag
          $ Cli_args.jobs_arg ~default:1
              ~doc:"Shard the corpus across $(docv) analysis workers \
                    (processes or domains; see $(b,--engine))."
          $ Cli_args.timeout_arg $ Cli_args.cache_arg $ Cli_args.market_arg
          $ Cli_args.engine_arg $ trace_arg)

let serve_cmd =
  let depth_arg =
    Arg.(value & opt int 256
         & info [ "depth" ] ~docv:"N"
             ~doc:"Admission bound: at most $(docv) requests queued (not \
                   yet dispatched); beyond it the daemon sheds instead of \
                   stalling.")
  in
  let max_clients_arg =
    Arg.(value & opt int 16
         & info [ "max-clients" ] ~docv:"N"
             ~doc:"Concurrent client connections (one fairness shard each).")
  in
  let quiet_arg =
    Arg.(value & flag
         & info [ "quiet" ] ~doc:"Suppress lifecycle lines on stderr.")
  in
  let stream_buf_arg =
    Arg.(value & opt int 262144
         & info [ "stream-buf" ] ~docv:"BYTES"
             ~doc:"Outbound buffer bound per client: past it, trace frames \
                   for a slow subscriber are shed (and counted) instead of \
                   queued, so streaming never blocks an analysis or a \
                   verdict.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the analysis daemon on a Unix socket: persistent workers, \
             a warm digest cache, per-client round-robin fairness, and \
             explicit shedding under overload.  Stop with SIGTERM or \
             Ctrl-C.")
    Term.(const cmd_serve $ Cli_args.socket_pos
          $ Cli_args.jobs_arg ~default:2
              ~doc:"Keep $(docv) persistent analysis workers (processes or \
                    domains; see $(b,--engine))."
          $ Cli_args.cache_arg $ depth_arg $ max_clients_arg
          $ Cli_args.deadline_arg
              ~doc:"Default per-request wall-clock budget; an overrunning \
                    request records a timeout verdict.  Forces the forked \
                    engine."
          $ Cli_args.engine_arg $ quiet_arg $ stream_buf_arg)

let submit_cmd =
  let trace_follow_arg =
    Arg.(value & flag
         & info [ "trace-follow" ]
             ~doc:"Stream the submissions' live trace events to stderr \
                   while they run (stdout stays exactly the report \
                   output).")
  in
  Cmd.v
    (Cmd.info "submit"
       ~doc:"Submit apps to a running $(b,ndroid serve) daemon and print \
             the verdicts exactly as $(b,ndroid analyze) would.  Exits 3 \
             if any app is flagged.")
    Term.(const cmd_submit $ Cli_args.socket_pos $ Cli_args.apps_after_socket
          $ Cli_args.market_arg $ Cli_args.mode_flags $ Cli_args.json_flag
          $ Cli_args.deadline_arg
              ~doc:"Per-request wall-clock budget (overrides the daemon's \
                    default)."
          $ trace_follow_arg)

let trace_cmd =
  let file_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE")
  in
  let cat_arg =
    Arg.(value & opt (some string) None
         & info [ "cat" ] ~docv:"CAT"
             ~doc:"Only events in this category (e.g. dalvik, jni, taint, \
                   sink, gc, log, pipeline).")
  in
  let limit_arg =
    Arg.(value & opt (some int) (Some 40)
         & info [ "limit" ] ~docv:"N"
             ~doc:"Print at most $(docv) events (default 40); --limit 0 \
                   with --cat still reports the count.  File mode only.")
  in
  let follow_arg =
    Arg.(value & flag
         & info [ "follow" ]
             ~doc:"Treat $(i,FILE) as the Unix socket of a running \
                   $(b,ndroid serve) daemon and stream live trace events \
                   from every analysis it runs, until the daemon exits (or \
                   Ctrl-C).")
  in
  let app_arg =
    Arg.(value & opt (some string) None
         & info [ "app" ] ~docv:"RE"
             ~doc:"Only apps whose name matches this (anchored) regular \
                   expression.  $(b,--follow) only.")
  in
  let throttle_arg =
    Arg.(value & opt int 0
         & info [ "throttle-ms" ] ~docv:"N"
             ~doc:"Per-(method, kind) throttle window on the trace clock \
                   (one event = one microsecond): at most one event per \
                   method and kind per window; source/sink events always \
                   pass; suppressed events are counted, never silently \
                   gone.  0 streams everything.  $(b,--follow) only.")
  in
  let jsonl_arg =
    Arg.(value & flag
         & info [ "jsonl" ]
             ~doc:"Print one canonical JSON object per event — \
                   byte-identical to the lines $(b,ndroid analyze --trace \
                   out.jsonl) writes for the same events.  $(b,--follow) \
                   only.")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Inspect a trace file written by $(b,ndroid analyze --trace), \
             or, with $(b,--follow), subscribe to a running $(b,ndroid \
             serve) daemon and stream live events as they happen.")
    Term.(const (fun target follow cat app throttle jsonl limit ->
            if follow then cmd_trace_follow target cat app throttle jsonl
            else cmd_trace target cat limit)
          $ file_arg $ follow_arg $ cat_arg $ app_arg $ throttle_arg
          $ jsonl_arg $ limit_arg)

let dump_cmd =
  let app_arg = Arg.(required & pos 0 (some string) None & info [] ~docv:"APP") in
  Cmd.v
    (Cmd.info "dump" ~doc:"Print an app's classes and bytecode (dexdump-style).")
    Term.(const cmd_dump $ app_arg)

let () =
  let info =
    Cmd.info "ndroid" ~version:"1.0.0"
      ~doc:"NDroid: taint tracking through JNI, simulated in OCaml"
  in
  exit (Cmd.eval' (Cmd.group info
          [ list_cmd; run_cmd; matrix_cmd; study_cmd; monkey_cmd; disasm_cmd;
            dump_cmd; scan_cmd; pack_cmd; classify_cmd; analyze_cmd;
            serve_cmd; submit_cmd; trace_cmd ]))
